"""Step-loop fixtures with planted dataflow bugs (LINT04/05/06).

The functions are analyzed statically through
:func:`repro.analysis.stepgraph.build_graph_for_function` with the
fixture registry in tests/analysis/test_dataflow.py — they are never
executed, so the undefined kernel names (``advect_u`` etc.) are fine.

Keep the line numbers stable: the tests assert exact locations via the
``LINE_*`` constants at the bottom.  Fixture kernels: ``advect_u`` and
``relax_u`` are halo-0 writers of rhou, ``smooth_u`` is a halo-1
reader/writer of rhou, ``combine`` is a halo-0 reader.
"""


def stale_halo_step(state, exchanger):
    exchanger.exchange([state], ["rhou"])
    advect_u(state.rhou, state.grid)   # writes rhou interior...
    smooth_u(state.rhou, state.grid)   # BUG: halo read of the stale rhou


def fresh_halo_step(state, exchanger):
    advect_u(state.rhou, state.grid)
    exchanger.exchange([state], ["rhou"])
    smooth_u(state.rhou, state.grid)   # fine: exchanged after the write


def axis_partial_step(state, exchanger):
    advect_u(state.rhou, state.grid)
    exchanger.exchange([state], ["rhou"], axes=(0,))
    smooth_u(state.rhou, state.grid)   # BUG: y halo never refreshed


def read_before_write_step(state, grid):
    out = combine(acc, state.rhou)     # BUG: acc assigned only below
    acc = advect_u(state.rhou, grid)
    return out, acc


def dead_store_step(state, grid):
    tmp = advect_u(state.rhou, grid)   # BUG: overwritten before any read
    tmp = relax_u(state.rhou, grid)
    return tmp


def live_store_step(state, grid):
    tmp = advect_u(state.rhou, grid)
    out = combine(tmp, state.rhou)
    tmp = relax_u(state.rhou, grid)
    return combine(out, tmp)


def suppressed_stale_halo_step(state, exchanger):
    exchanger.exchange([state], ["rhou"])
    advect_u(state.rhou, state.grid)
    smooth_u(state.rhou, state.grid)  # sanitizer: allow[LINT04] width-0 probe run

def suppressed_read_before_write_step(state, grid):
    out = combine(acc, state.rhou)  # sanitizer: allow[LINT05] bound by the test driver
    acc = advect_u(state.rhou, grid)
    return out, acc


def suppressed_dead_store_step(state, grid):
    tmp = advect_u(state.rhou, grid)  # sanitizer: allow[LINT06] kept for timing parity
    tmp = relax_u(state.rhou, grid)
    return tmp


#: the planted-bug lines the tests pin (1-based)
LINE_STALE_HALO = 18
LINE_AXIS_PARTIAL = 30
LINE_READ_BEFORE_WRITE = 34
LINE_DEAD_STORE = 40
