"""Backend-implementation fixtures with planted declaration drift
(LINT07) and precision leaks (LINT08).

tests/analysis/test_dataflow.py registers these against fixture
``StencilSpec`` declarations and runs
:func:`repro.analysis.dataflow.fusion_findings` /
:func:`~repro.analysis.dataflow.precision_findings` over them.  Keep the
line numbers stable: the ``LINE_*`` constants at the bottom are pinned
by the tests.
"""
import numpy as np


def blend_ref(phi, grid):
    """Reference kernel for the fixture spec 'blend' (clean)."""
    out = np.zeros_like(phi)
    out[1:-1] = 0.5 * (phi[2:] + phi[:-2])
    return out


def blend_fused_bad_signature(pool, phi):
    """BUG: drops the reference's ``grid`` parameter."""
    return 0.5 * (phi[2:] + phi[:-2])


def blend_fused_ok(pool, phi, grid):
    out = np.zeros_like(phi)
    out[1:-1] = 0.5 * (phi[2:] + phi[:-2])
    return out


def blend_numba_upcast(phi, grid):
    acc = np.zeros(phi.shape)   # BUG: float64 regardless of phi.dtype
    acc[1:-1] = 0.5 * (phi[2:] + phi[:-2])
    return acc


def blend_numba_clean(phi, grid):
    acc = np.zeros(phi.shape, dtype=phi.dtype)
    acc[1:-1] = 0.5 * (phi[2:] + phi[:-2])
    return acc


def blend_numba_suppressed(phi, grid):
    acc = np.zeros(phi.shape)  # sanitizer: allow[LINT08] diag path, f64 wanted
    acc[1:-1] = 0.5 * (phi[2:] + phi[:-2])
    return acc


def blend_fused_suppressed(pool, phi):  # sanitizer: allow[LINT07] shim binds grid
    return 0.5 * (phi[2:] + phi[:-2])


#: the planted-bug lines the tests pin (1-based)
LINE_BAD_SIGNATURE = 21
LINE_UPCAST = 33
