"""Seeded-bug fixtures for the dataflow analyzer.

Each module plants exactly one bug per check (LINT04..LINT08) at a known
``file:line``; tests/analysis/test_dataflow.py asserts each fires exactly
once at that location — the analyzer's own regression harness.
"""
