"""Tests of the whole-program step-graph builder: the real model graphs
(both entries), the fixture harness, and the exchange-axis introspection."""
import inspect
from pathlib import Path

import pytest

from repro.analysis.stepgraph import (
    PROGNOSTIC_FIELDS,
    build_graph_for_function,
    build_step_graph,
    exchange_default_axes,
)
from repro.stencil.spec import StencilSpec

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_registry():
    return {
        "advect_u": StencilSpec(name="advect_u", reads=("rhou",),
                                writes=("rhou",), halo=0),
        "relax_u": StencilSpec(name="relax_u", reads=("rhou",),
                               writes=("rhou",), halo=0),
        "smooth_u": StencilSpec(name="smooth_u", reads=("rhou",),
                                writes=("rhou",), halo=1),
        "combine": StencilSpec(name="combine", reads=("rhou",),
                               writes=("precip",), halo=0),
    }


# ------------------------------------------------------- the real graphs
def test_single_entry_graph_covers_the_dycore():
    g = build_step_graph("single")
    kernels = {n.name for n in g.kernels()}
    # the RK3 long step must show the paper's kernel chain
    for name in ("advect_u", "advect_v", "advect_w", "advect_scalar",
                 "kessler_step"):
        assert name in kernels, f"{name} missing from {sorted(kernels)}"
    assert len(g.exchanges()) >= 5
    # a resolvable graph: every local read has a prior definition
    assert g.use_before_def == []


def test_multigpu_entry_graph_builds_and_is_resolved():
    g = build_step_graph("multigpu")
    assert len(g.kernels()) >= 10
    assert len(g.exchanges()) >= 3
    assert g.use_before_def == []


def test_graph_notes_name_only_known_opaque_calls():
    for entry in ("single", "multigpu"):
        g = build_step_graph(entry)
        for note in g.notes:
            assert ("opaque state call" in note
                    or "cannot resolve" in note), note


def test_edges_reference_valid_nodes():
    g = build_step_graph("single")
    n = len(g.nodes)
    edges = g.edges()
    assert edges, "the step graph must have def/use chains"
    for w, r, name in edges:
        assert 0 <= w < r < n
        assert name in PROGNOSTIC_FIELDS or ":" in name


def test_summary_mentions_counts():
    g = build_step_graph("single")
    head = g.summary().splitlines()[0]
    assert f"{len(g.kernels())} kernel" in head
    assert f"{len(g.exchanges())} exchange" in head


# -------------------------------------------------------- fixture harness
def test_fixture_graph_nodes_and_kinds():
    g = build_graph_for_function(FIXTURES / "flow_bugs.py",
                                 "stale_halo_step",
                                 registry=fixture_registry())
    kinds = [n.kind for n in g.nodes]
    assert kinds.count("exchange") == 1
    assert kinds.count("kernel") == 2
    ex = g.exchanges()[0]
    assert ex.exch_fields == ("rhou",)
    smooth = [n for n in g.kernels() if n.name == "smooth_u"][0]
    assert smooth.halo == 1 and "rhou" in smooth.fields


def test_fixture_graph_partial_axes_are_recorded():
    g = build_graph_for_function(FIXTURES / "flow_bugs.py",
                                 "axis_partial_step",
                                 registry=fixture_registry())
    assert g.exchanges()[0].axes == (0,)


def test_unknown_function_raises():
    with pytest.raises(KeyError):
        build_graph_for_function(FIXTURES / "flow_bugs.py", "nope")


def test_unknown_entry_raises():
    with pytest.raises(ValueError):
        build_step_graph("triple")


# -------------------------------------------------- exchanger introspection
def test_exchange_default_axes_track_the_exchanger_signature():
    from repro.dist.halo import HaloExchanger

    sig_default = inspect.signature(
        HaloExchanger.exchange).parameters["axes"].default
    assert exchange_default_axes() == tuple(sorted(sig_default))
