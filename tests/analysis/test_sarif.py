"""SARIF 2.1.0 export: structural schema smoke-test (no jsonschema
dependency), location mapping for static and dynamic findings, and
suppression provenance."""
import json

from repro.analysis.findings import CODES, Finding, Report
from repro.analysis.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    to_sarif,
    write_sarif,
)


def make_report():
    r = Report()
    r.extend([
        Finding(code="LINT04", message="stale halo read of 'rhou'",
                file="/repo/src/repro/core/rk3.py", line=42),
        Finding(code="RACE01", message="conflicting accesses",
                severity="error", device="gpu0", stream=2,
                op="advect_u", op_other="exchange", occurrences=3),
        Finding(code="SUPP01", message="stale suppression",
                severity="warning", file="/repo/src/x.py", line=7),
    ], passname="dataflow")
    inline = Finding(code="LINT06", message="dead store",
                     file="/repo/src/y.py", line=3)
    external = Finding(code="LINT05", message="read before write",
                       file="/repo/src/z.py", line=9)
    external._suppressed_via = "baseline"
    r.suppressed += [inline, external]
    return r


def test_document_shape_matches_sarif_2_1_0():
    doc = to_sarif(make_report())
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"] == SARIF_SCHEMA
    assert isinstance(doc["runs"], list) and len(doc["runs"]) == 1
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-sanitizer"
    # every registry code becomes a rule, fired or not
    assert {r["id"] for r in driver["rules"]} == set(CODES)
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["properties"]["passname"]
    for res in run["results"]:
        assert res["ruleId"] in CODES
        assert res["level"] in ("error", "warning", "note")
        assert isinstance(res["message"]["text"], str)
        assert isinstance(res["locations"], list) and res["locations"]


def test_static_findings_carry_physical_locations():
    doc = to_sarif(make_report(), root="/repo")
    results = doc["runs"][0]["results"]
    lint04 = next(r for r in results if r["ruleId"] == "LINT04")
    phys = lint04["locations"][0]["physicalLocation"]
    assert phys["artifactLocation"]["uri"] == "src/repro/core/rk3.py"
    assert phys["region"]["startLine"] == 42
    supp01 = next(r for r in results if r["ruleId"] == "SUPP01")
    assert supp01["level"] == "warning"


def test_dynamic_findings_carry_logical_locations():
    doc = to_sarif(make_report())
    race = next(r for r in doc["runs"][0]["results"]
                if r["ruleId"] == "RACE01")
    loc = race["locations"][0]["logicalLocations"][0]
    assert "gpu0" in loc["fullyQualifiedName"]
    assert race["properties"]["occurrences"] == 3


def test_suppressed_findings_are_marked_not_dropped():
    doc = to_sarif(make_report())
    results = doc["runs"][0]["results"]
    lint06 = next(r for r in results if r["ruleId"] == "LINT06")
    assert lint06["suppressions"][0]["kind"] == "inSource"
    lint05 = next(r for r in results if r["ruleId"] == "LINT05")
    assert lint05["suppressions"][0]["kind"] == "external"
    live = [r for r in results if "suppressions" not in r]
    assert {r["ruleId"] for r in live} == {"LINT04", "RACE01", "SUPP01"}


def test_write_sarif_round_trips(tmp_path):
    out = write_sarif(make_report(), tmp_path / "out.sarif")
    doc = json.loads(out.read_text())
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["properties"]["passes"] == ["dataflow"]


def test_empty_report_is_valid_sarif():
    doc = to_sarif(Report())
    assert doc["runs"][0]["results"] == []
    assert {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]} \
        == set(CODES)


# -------------------------------------------------- code registry hygiene
def test_unknown_code_suggests_the_nearest_registered_one():
    import pytest

    with pytest.raises(ValueError, match="did you mean 'LINT04'"):
        Finding(code="LINT4", message="typo")


def test_codes_table_lists_every_code():
    from repro.analysis.findings import codes_table

    table = codes_table()
    for code in CODES:
        assert code in table
