"""Unit tests of the happens-before race checker."""
from repro.analysis import racecheck_device, racecheck_ops
from repro.gpu.device import Access, GPUDevice
from repro.gpu.spec import TESLA_S1070


def _dev():
    return GPUDevice(TESLA_S1070)


def test_ordered_pair_is_clean(race_timeline):
    dev = race_timeline(ordered=True)
    assert racecheck_device(dev) == []


def test_missing_edge_is_a_race(race_timeline):
    dev = race_timeline(ordered=False)
    findings = racecheck_device(dev)
    assert len(findings) == 1
    f = findings[0]
    assert f.code == "RACE01"
    assert f.op == "produce" and f.op_other == "consume"
    assert f.buffer == "buf"
    assert f.stream == 1            # the producer's stream


def test_race_found_even_when_engine_serializes():
    """The S1070's single DMA engine makes the unordered copy pair
    non-overlapping in time; the hazard must be reported regardless —
    the masked-by-serialization class is the point of the pass."""
    dev = _dev()
    s1, s2 = dev.create_stream(), dev.create_stream()
    up = dev.schedule("produce", "h2d", s1, 1.0,
                      accesses=(Access("buf", "w"),))
    down = dev.schedule("consume", "d2h", s2, 1.0,
                        accesses=(Access("buf", "r"),))
    assert down.start >= up.end          # temporally serialized anyway
    findings = racecheck_device(dev)
    assert len(findings) == 1 and findings[0].code == "RACE01"


def test_program_order_within_a_stream_is_clean():
    dev = _dev()
    s = dev.create_stream()
    dev.schedule("w", "h2d", s, 1.0, accesses=(Access("b", "w"),))
    dev.schedule("r", "d2h", s, 1.0, accesses=(Access("b", "r"),))
    assert racecheck_device(dev) == []


def test_transitive_ordering_through_chain():
    """a -HB-> b -HB-> c orders a vs c even with no direct edge."""
    dev = _dev()
    s1, s2, s3 = (dev.create_stream() for _ in range(3))
    dev.schedule("a", "d2h", s1, 1.0, accesses=(Access("b", "w"),))
    s2.wait_event(s1.record_event())
    dev.schedule("b", "mpi", s2, 1.0)
    s3.wait_event(s2.record_event())
    dev.schedule("c", "h2d", s3, 1.0, accesses=(Access("b", "r"),))
    assert racecheck_device(dev) == []


def test_synchronize_separates_epochs():
    dev = _dev()
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("w", "d2h", s1, 1.0, accesses=(Access("b", "w"),))
    dev.synchronize()
    dev.schedule("r", "mpi", s2, 1.0, accesses=(Access("b", "r"),))
    assert racecheck_device(dev) == []


def test_read_read_is_not_a_conflict():
    dev = _dev()
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("r1", "d2h", s1, 1.0, accesses=(Access("b", "r"),))
    dev.schedule("r2", "mpi", s2, 1.0, accesses=(Access("b", "r"),))
    assert racecheck_device(dev) == []


def test_disjoint_ranges_do_not_conflict():
    dev = _dev()
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("lo", "d2h", s1, 1.0,
                 accesses=(Access("b", "w", lo=0, hi=10),))
    dev.schedule("hi", "mpi", s2, 1.0,
                 accesses=(Access("b", "w", lo=10, hi=20),))
    assert racecheck_device(dev) == []


def test_kernel_pairs_skipped_by_default():
    """GT200 runs one kernel at a time, so kernel-kernel ordering is a
    hardware guarantee — unless the audit explicitly opts in."""
    dev = _dev()
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("k1", "kernel", s1, 1.0, accesses=(Access("b", "w"),))
    dev.schedule("k2", "kernel", s2, 1.0, accesses=(Access("b", "w"),))
    assert racecheck_device(dev) == []
    assert len(racecheck_device(dev, check_kernel_pairs=True)) == 1


def test_kernel_vs_copy_still_checked():
    dev = _dev()
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("k", "kernel", s1, 1.0, accesses=(Access("b", "w"),))
    dev.schedule("c", "d2h", s2, 1.0, accesses=(Access("b", "r"),))
    assert len(racecheck_device(dev)) == 1


def test_recurring_hazard_deduplicates_with_occurrences():
    dev = _dev()
    s1, s2 = dev.create_stream(), dev.create_stream()
    for _ in range(5):
        dev.schedule("w", "d2h", s1, 1.0, accesses=(Access("b", "w"),))
        dev.schedule("r", "mpi", s2, 1.0, accesses=(Access("b", "r"),))
        dev.synchronize()
    findings = racecheck_device(dev)
    assert len(findings) == 1
    assert findings[0].occurrences == 5


def test_shadow_semantics_report_latest_conflict_only():
    """Two unordered writers followed by an unordered reader: the reader
    races against the most recent writer only — one root cause."""
    dev = _dev()
    s1, s2, s3 = (dev.create_stream() for _ in range(3))
    dev.schedule("w1", "d2h", s1, 1.0, accesses=(Access("b", "w"),))
    dev.schedule("w2", "h2d", s2, 1.0, accesses=(Access("b", "w"),))
    dev.schedule("r", "mpi", s3, 1.0, accesses=(Access("b", "r"),))
    pairs = {(f.op, f.op_other) for f in racecheck_device(dev)}
    assert pairs == {("w1", "w2"), ("w2", "r")}


def test_racecheck_ops_ignores_unannotated_ops():
    dev = _dev()
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("a", "d2h", s1, 1.0)
    dev.schedule("b", "mpi", s2, 1.0)
    assert racecheck_ops(dev.timeline) == []
