"""Unit tests of the asuca-lint pass: the AST rules (LINT01/LINT02), the
declaration-driven stencil halo check (LINT03), and the run over the repo."""
import dataclasses
import textwrap
from pathlib import Path

from repro.analysis import lint_paths, lint_stencils

REPO_SRC = Path(__file__).parents[2] / "src" / "repro"


def _write(tmp_path, name, body):
    p = tmp_path / name
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(textwrap.dedent(body))
    return p


def _lint(path, **kw):
    return lint_paths(path, **kw)


# ------------------------------------------------------------------ LINT01
def test_transfer_inside_step_is_flagged(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def step(self, state):
                self.arr.copy_to_host(state.out)
    """)
    findings, _ = _lint(p)
    assert [f.code for f in findings] == ["LINT01"]
    assert findings[0].line == 4


def test_transfer_inside_run_loop_is_flagged(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def run(self, state, n):
                for _ in range(n):
                    self.arr.copy_from_host(state.inp)
    """)
    findings, _ = _lint(p)
    assert [f.code for f in findings] == ["LINT01"]


def test_transfer_outside_the_loop_is_clean(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def run(self, state, n):
                self.arr.copy_from_host(state.inp)   # hoisted: fine
                for _ in range(n):
                    self.compute(state)
    """)
    findings, _ = _lint(p)
    assert findings == []


def test_one_level_indirect_transfer_is_flagged(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def push(self, state):
                self.arr.copy_from_host(state.inp)
            def step(self, state):
                self.push(state)
    """)
    findings, _ = _lint(p)
    assert [f.code for f in findings] == ["LINT01"]
    assert "push" in findings[0].message


def test_checkpoint_and_halo_helpers_are_allowlisted(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def save_checkpoint(self, state):
                self.arr.copy_to_host(state.out)
            def exchange_halo(self, state):
                self.arr.copy_from_host(state.inp)
            def step(self, state):
                self.save_checkpoint(state)
                self.exchange_halo(state)
    """)
    findings, _ = _lint(p)
    assert findings == []


def test_inline_suppression_moves_finding_to_suppressed(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def step(self, state):
                self.arr.copy_to_host(state.out)  # sanitizer: allow[LINT01] output cadence is per-step by design
    """)
    findings, suppressed = _lint(p)
    assert findings == []
    assert [f.code for f in suppressed] == ["LINT01"]


# ------------------------------------------------------------------ LINT02
def test_oversized_block_is_flagged(tmp_path):
    p = _write(tmp_path, "m.py", """
        from repro.gpu.kernel import LaunchConfig
        cfg = LaunchConfig(block=(64, 32, 1))
    """)
    findings, _ = _lint(p)
    assert [f.code for f in findings] == ["LINT02"]
    assert "2048" in findings[0].message


def test_low_occupancy_block_is_flagged(tmp_path):
    p = _write(tmp_path, "m.py", """
        from repro.gpu.kernel import LaunchConfig
        cfg = LaunchConfig(block=(8, 1, 1))
    """)
    findings, _ = _lint(p)
    assert [f.code for f in findings] == ["LINT02"]
    assert "occupancy" in findings[0].message


def test_paper_block_is_clean(tmp_path):
    p = _write(tmp_path, "m.py", """
        from repro.gpu.kernel import LaunchConfig
        cfg = LaunchConfig(block=(64, 4, 1))
    """)
    findings, _ = _lint(p)
    assert findings == []


def test_non_literal_block_is_ignored(tmp_path):
    p = _write(tmp_path, "m.py", """
        from repro.gpu.kernel import LaunchConfig
        def make(bx):
            return LaunchConfig(block=(bx, 4, 1))
    """)
    findings, _ = _lint(p)
    assert findings == []


# ------------------------------------------------------------------ LINT03
def test_understated_halo_declaration_is_probed_dirty():
    """A spec that declares a halo narrower than the kernel actually
    reads is caught by the probe: perturbing the rings beyond the
    declared width changes the interior output."""
    from repro.stencil import load_dycore_specs
    from repro.stencil.verify import probe_spec

    spec = load_dycore_specs()["advect_scalar"]
    lying = dataclasses.replace(spec, halo=spec.halo - 1)
    result = probe_spec(lying)
    assert result.probed and not result.clean
    assert "interior" in result.detail


def test_honest_halo_declaration_is_probed_clean():
    from repro.stencil import load_dycore_specs
    from repro.stencil.verify import probe_spec

    spec = load_dycore_specs()["advect_scalar"]
    result = probe_spec(spec)
    assert result.probed and result.clean


def test_halo_budget_violation_is_flagged_at_declaration():
    """A declaration wider than the grid's halo budget is a LINT03
    finding anchored at the @stencil line."""
    findings, _ = lint_stencils(halo=1)
    codes = {f.code for f in findings}
    assert codes == {"LINT03"}
    wide = [f for f in findings if "advect_scalar" in f.message]
    assert wide and "budget 1" in wide[0].message
    assert wide[0].file.endswith("advection.py") and wide[0].line


# ------------------------------------------------------------ repo hygiene
def test_repo_source_tree_is_lint_clean():
    """The acceptance gate CI enforces: zero findings on src/repro."""
    findings, _ = lint_paths(REPO_SRC)
    assert findings == [], "\n".join(f.text() for f in findings)


def test_repo_stencil_declarations_are_honest():
    """Every registered spec passes the probe at its declared width —
    the declarations the cost table and drift bands trust are true."""
    findings, suppressed = lint_stencils()
    assert findings == [], "\n".join(f.text() for f in findings)
    assert suppressed == []


def test_inline_suppression_covers_lint02(tmp_path):
    p = _write(tmp_path, "m.py", """
        from repro.gpu.kernel import LaunchConfig
        cfg = LaunchConfig(block=(64, 32, 1))  # sanitizer: allow[LINT02] stress fixture
    """)
    findings, suppressed = _lint(p)
    assert findings == []
    assert [f.code for f in suppressed] == ["LINT02"]


def test_inline_suppression_covers_lint03_at_the_origin(tmp_path):
    """LINT03 anchors at the @stencil declaration (spec.origin) and is
    suppressed by an allow-comment on that line — the same
    origin_suppressed contract lint_stencils() emits through."""
    from repro.analysis.findings import origin_suppressed

    p = _write(tmp_path, "decl.py", """
        @stencil(reads=("phi",), writes=("out",), halo=1)  # sanitizer: allow[LINT03] probe noise
        def k(phi, grid):
            return phi
    """)
    assert origin_suppressed(str(p), 2, "LINT03")
    assert not origin_suppressed(str(p), 3, "LINT03")
    assert not origin_suppressed(str(p), 2, "LINT02")
