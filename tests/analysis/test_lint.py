"""Unit tests of the asuca-lint AST pass (and its run over the repo)."""
import textwrap
from pathlib import Path

from repro.analysis import lint_paths

REPO_SRC = Path(__file__).parents[2] / "src" / "repro"


def _write(tmp_path, name, body):
    p = tmp_path / name
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(textwrap.dedent(body))
    return p


def _lint(path, **kw):
    return lint_paths(path, halo=3, **kw)


# ------------------------------------------------------------------ LINT01
def test_transfer_inside_step_is_flagged(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def step(self, state):
                self.arr.copy_to_host(state.out)
    """)
    findings, _ = _lint(p)
    assert [f.code for f in findings] == ["LINT01"]
    assert findings[0].line == 4


def test_transfer_inside_run_loop_is_flagged(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def run(self, state, n):
                for _ in range(n):
                    self.arr.copy_from_host(state.inp)
    """)
    findings, _ = _lint(p)
    assert [f.code for f in findings] == ["LINT01"]


def test_transfer_outside_the_loop_is_clean(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def run(self, state, n):
                self.arr.copy_from_host(state.inp)   # hoisted: fine
                for _ in range(n):
                    self.compute(state)
    """)
    findings, _ = _lint(p)
    assert findings == []


def test_one_level_indirect_transfer_is_flagged(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def push(self, state):
                self.arr.copy_from_host(state.inp)
            def step(self, state):
                self.push(state)
    """)
    findings, _ = _lint(p)
    assert [f.code for f in findings] == ["LINT01"]
    assert "push" in findings[0].message


def test_checkpoint_and_halo_helpers_are_allowlisted(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def save_checkpoint(self, state):
                self.arr.copy_to_host(state.out)
            def exchange_halo(self, state):
                self.arr.copy_from_host(state.inp)
            def step(self, state):
                self.save_checkpoint(state)
                self.exchange_halo(state)
    """)
    findings, _ = _lint(p)
    assert findings == []


def test_inline_suppression_moves_finding_to_suppressed(tmp_path):
    p = _write(tmp_path, "m.py", """
        class Runner:
            def step(self, state):
                self.arr.copy_to_host(state.out)  # sanitizer: allow[LINT01] output cadence is per-step by design
    """)
    findings, suppressed = _lint(p)
    assert findings == []
    assert [f.code for f in suppressed] == ["LINT01"]


# ------------------------------------------------------------------ LINT02
def test_oversized_block_is_flagged(tmp_path):
    p = _write(tmp_path, "m.py", """
        from repro.gpu.kernel import LaunchConfig
        cfg = LaunchConfig(block=(64, 32, 1))
    """)
    findings, _ = _lint(p)
    assert [f.code for f in findings] == ["LINT02"]
    assert "2048" in findings[0].message


def test_low_occupancy_block_is_flagged(tmp_path):
    p = _write(tmp_path, "m.py", """
        from repro.gpu.kernel import LaunchConfig
        cfg = LaunchConfig(block=(8, 1, 1))
    """)
    findings, _ = _lint(p)
    assert [f.code for f in findings] == ["LINT02"]
    assert "occupancy" in findings[0].message


def test_paper_block_is_clean(tmp_path):
    p = _write(tmp_path, "m.py", """
        from repro.gpu.kernel import LaunchConfig
        cfg = LaunchConfig(block=(64, 4, 1))
    """)
    findings, _ = _lint(p)
    assert findings == []


def test_non_literal_block_is_ignored(tmp_path):
    p = _write(tmp_path, "m.py", """
        from repro.gpu.kernel import LaunchConfig
        def make(bx):
            return LaunchConfig(block=(bx, 4, 1))
    """)
    findings, _ = _lint(p)
    assert findings == []


# ------------------------------------------------------------------ LINT03
def test_wide_stencil_slice_in_kernel_file_is_flagged(tmp_path):
    p = _write(tmp_path, "gpu/asuca_kernels.py", """
        def stencil(f, out):
            out[4:-4] = f[8:] - f[:-8]
    """)
    findings, _ = _lint(tmp_path)
    codes = [f.code for f in findings]
    assert codes and set(codes) == {"LINT03"}
    assert "8" in findings[0].message or "4" in findings[0].message


def test_halo_width_slices_are_clean(tmp_path):
    p = _write(tmp_path, "gpu/asuca_kernels.py", """
        def stencil(f, out):
            out[1:-1] = f[2:] - f[:-2]
    """)
    findings, _ = _lint(tmp_path)
    assert findings == []


def test_wide_slices_outside_kernel_files_are_ignored(tmp_path):
    p = _write(tmp_path, "misc.py", """
        def windowing(f):
            return f[100:]
    """)
    findings, _ = _lint(p)
    assert findings == []


# ------------------------------------------------------------ repo hygiene
def test_repo_source_tree_is_lint_clean():
    """The acceptance gate CI enforces: zero findings on src/repro."""
    findings, _ = lint_paths(REPO_SRC)
    assert findings == [], "\n".join(f.text() for f in findings)
