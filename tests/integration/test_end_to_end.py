"""Cross-module integration tests: long runs, conservation under the full
physics+dynamics loop, restart determinism, and precision paths."""
import numpy as np
import pytest

from repro.core import (
    AsucaModel,
    DynamicsConfig,
    ModelConfig,
    make_grid,
    make_reference_state,
)
from repro.workloads.mountain_wave import make_mountain_wave_case
from repro.workloads.sounding import constant_stability_sounding
from repro.workloads.warm_bubble import make_warm_bubble_case


def test_long_mountain_wave_run_stays_bounded():
    """100 long steps (~8 simulated minutes): no drift, no blow-up, wave
    amplitude within physical bounds."""
    case = make_mountain_wave_case(nx=32, ny=8, nz=16, dx=2000.0,
                                   ztop=16000.0, dt=5.0)
    m0 = case.state.total_mass()
    case.run(100)
    d = case.model.diagnostics(case.state)
    assert d.max_w < 5.0
    assert d.max_wind < 25.0
    assert case.state.total_mass() == pytest.approx(m0, rel=1e-7)
    assert 280.0 < d.min_theta and d.max_theta < 360.0


def test_determinism():
    """Identical setups produce bit-identical trajectories."""
    runs = []
    for _ in range(2):
        case = make_warm_bubble_case(nx=10, ny=10, nz=10, dt=4.0)
        case.run(10)
        runs.append(case.state)
    for name in runs[0].prognostic_names():
        np.testing.assert_array_equal(runs[0].get(name), runs[1].get(name))


def test_total_water_budget_with_physics():
    """Water is conserved up to surface precipitation: vapor + cloud +
    rain + accumulated rain-out stays constant."""
    case = make_warm_bubble_case(nx=12, ny=12, nz=14, dt=4.0)
    g = case.grid
    w0 = case.state.total_water_mass()
    case.run(60)
    st = case.state
    rained = float(st.precip_accum.sum()) * g.dx * g.dy if st.precip_accum is not None else 0.0
    w1 = st.total_water_mass()
    assert w1 + rained == pytest.approx(w0, rel=5e-4)
    assert case.cloud_water_path() > 0.0


def test_moist_dynamics_couple():
    """Latent heating feeds back on the dynamics: the moist bubble rises
    faster than the identical dry bubble."""
    moist = make_warm_bubble_case(nx=12, ny=12, nz=14, dt=4.0)
    dry = make_warm_bubble_case(nx=12, ny=12, nz=14, dt=4.0, env_rh=0.0,
                                bubble_rh=0.0)
    moist.run(50)
    dry.run(50)
    w_moist = moist.model.diagnostics(moist.state).max_w
    w_dry = dry.model.diagnostics(dry.state).max_w
    assert w_moist > w_dry


def test_double_vs_single_precision_consistency():
    """The float32 path tracks the float64 path closely over a short run —
    the reproduction's version of the paper's SP-is-enough argument."""
    res = {}
    for dtype in (np.float64, np.float32):
        g = make_grid(nx=16, ny=8, nz=10, dx=2000.0, dy=2000.0, ztop=10000.0)
        ref = make_reference_state(g, constant_stability_sounding())
        model = AsucaModel(g, ref, ModelConfig(dynamics=DynamicsConfig(dt=4.0, ns=4)))
        st = model.initial_state(u0=10.0, dtype=dtype)
        X = g.x_c()[:, None, None]
        st.rhotheta += (st.rho * np.exp(-(((X - 16000.0) / 3000.0) ** 2))).astype(dtype)
        model._exchange(st, None)
        for _ in range(10):
            st = model.step(st)
        res[dtype] = st
    th64 = res[np.float64].theta_m()
    th32 = res[np.float32].theta_m().astype(np.float64)
    g = res[np.float64].grid
    err = np.abs(g.interior(th64) - g.interior(th32)).max()
    assert err < 5e-3  # Kelvin; float32 round-off scale, not a divergence


def test_stretched_vertical_grid_runs():
    zf = np.concatenate([[0.0], np.cumsum(np.linspace(300.0, 1100.0, 12))])
    g = make_grid(nx=16, ny=8, nz=12, dx=2000.0, dy=2000.0,
                  ztop=float(zf[-1]), z_faces=zf)
    ref = make_reference_state(g, constant_stability_sounding())
    model = AsucaModel(g, ref, ModelConfig(dynamics=DynamicsConfig(dt=4.0, ns=4)))
    st = model.initial_state(u0=10.0)
    X = g.x_c()[:, None, None]
    st.rhotheta += st.rho * 0.5 * np.exp(-(((X - 16000.0) / 3000.0) ** 2))
    model._exchange(st, None)
    for _ in range(10):
        st = model.step(st)
    d = model.diagnostics(st)
    assert np.isfinite(d.max_w) and d.max_w < 5.0
