"""Whole-dycore symmetry properties: discrete translation equivariance on
periodic domains.

If the initial condition is shifted by k cells, the solution after any
number of steps is the same field shifted by k cells, bit for bit — every
operator in the model is translation invariant, periodic fills included.
This exercises *all* of the dynamics and physics in one assertion and
catches any stencil that accidentally references absolute position.
"""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AsucaModel, DynamicsConfig, ModelConfig, make_grid, make_reference_state
from repro.core.pressure import eos_pressure, exner
from repro.physics.saturation import saturation_mixing_ratio
from repro.workloads.sounding import tropospheric_sounding


def _roll_state(state, kx, ky):
    """Shift a periodic state by (kx, ky) interior cells."""
    g = state.grid
    out = state.copy()
    for name in state.prognostic_names():
        arr = out.get(name)
        # roll the *interior*, then re-fill halos
        h = g.halo
        ex = 1 if name == "rhou" else 0
        ey = 1 if name == "rhov" else 0
        # drop the duplicated seam entry before rolling staggered fields
        inner = arr[h : h + g.nx, h : h + g.ny].copy() if not (ex or ey) else None
        if name == "rhou":
            inner = arr[h : h + g.nx, h : h + g.ny].copy()   # faces h..h+nx-1
        elif name == "rhov":
            inner = arr[h : h + g.nx, h : h + g.ny].copy()
        rolled = np.roll(np.roll(inner, kx, axis=0), ky, axis=1)
        arr[h : h + g.nx, h : h + g.ny] = rolled
        if name == "rhou":
            arr[h + g.nx, h : h + g.ny] = arr[h, h : h + g.ny]
        if name == "rhov":
            arr[h : h + g.nx, h + g.ny] = arr[h : h + g.nx, h]
    return out


def _make_model(physics=False):
    g = make_grid(nx=16, ny=12, nz=10, dx=1000.0, dy=1000.0, ztop=8000.0)
    ref = make_reference_state(g, tropospheric_sounding())
    cfg = ModelConfig(dynamics=DynamicsConfig(dt=3.0, ns=4),
                      physics_enabled=physics)
    return AsucaModel(g, ref, cfg)


def _bubble_state(model, physics=False):
    st = model.initial_state(u0=4.0)
    g = model.grid
    X = g.x_c()[:, None, None]
    Y = g.y_c()[None, :, None]
    z3 = g.z3d_c()
    blob = np.exp(-(((X - 5000.0) / 2000.0) ** 2)
                  - (((Y - 4000.0) / 2000.0) ** 2)
                  - (((z3 - 2000.0) / 1200.0) ** 2))
    st.rhotheta += st.rho * 2.0 * blob
    if physics:
        p = eos_pressure(st.rhotheta, g)
        T = (st.rhotheta / st.rho) * exner(p)
        st.q["qv"][...] = (0.5 + 0.6 * blob) * saturation_mixing_ratio(p, T) * st.rho
    model._exchange(st, None)
    return st


@settings(max_examples=4, deadline=None)
@given(kx=st.integers(1, 15), ky=st.integers(0, 11))
def test_translation_equivariance_dry(kx, ky):
    model = _make_model()
    st = _bubble_state(model)
    shifted0 = _roll_state(st, kx, ky)
    model._exchange(shifted0, None)

    a = model.run(st.copy(), 3)
    b = model.run(shifted0, 3)
    a_shifted = _roll_state(a, kx, ky)
    g = model.grid
    h = g.halo
    for name in a.prognostic_names():
        np.testing.assert_array_equal(
            a_shifted.get(name)[h : h + g.nx, h : h + g.ny],
            b.get(name)[h : h + g.nx, h : h + g.ny],
            err_msg=f"{name} shift=({kx},{ky})",
        )


def test_translation_equivariance_with_physics():
    model = _make_model(physics=True)
    st = _bubble_state(model, physics=True)
    kx, ky = 7, 5
    shifted0 = _roll_state(st, kx, ky)
    model._exchange(shifted0, None)
    a = model.run(st.copy(), 3)
    b = model.run(shifted0, 3)
    a_shifted = _roll_state(a, kx, ky)
    g = model.grid
    h = g.halo
    for name in a.prognostic_names():
        np.testing.assert_array_equal(
            a_shifted.get(name)[h : h + g.nx, h : h + g.ny],
            b.get(name)[h : h + g.nx, h : h + g.ny],
            err_msg=name,
        )
