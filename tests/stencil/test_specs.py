"""The stencil registry, its executor machinery, and the declared-shape
contracts the rest of the repo derives from (docs/STENCILS.md)."""
import numpy as np
import pytest

from repro.stencil import (
    BACKENDS,
    FUSED_IMPLS,
    StencilExecutor,
    active_executor,
    declared_bytes_band,
    declared_flops_band,
    default_backend,
    load_dycore_specs,
    numba_available,
    table_costs,
    use_executor,
)
from repro.stencil.spec import StencilFunction, stencil


# ----------------------------------------------------------------- registry
def test_production_specs_register_and_validate():
    specs = load_dycore_specs()
    # the hot dycore + physics kernels are all declared
    for name in ("advect_scalar", "advect_u", "advect_v", "advect_w",
                 "limited_face_flux", "horizontal_laplacian_c",
                 "hyperdiffusion_c", "vertical_diffusion_c",
                 "eos_pressure", "helmholtz_solve", "fill_halos_state",
                 "kessler_step"):
        assert name in specs, name
    for spec in specs.values():
        assert spec.halo >= 0
        assert spec.writes
        assert spec.launch == (64, 4, 1)  # the paper's block geometry
        assert spec.origin is not None and spec.origin[1] > 0


def test_duplicate_registration_raises():
    with pytest.raises(ValueError, match="already registered"):
        @stencil(name="advect_scalar", reads=("a",), writes=("b",), halo=1)
        def advect_scalar_again(a):  # pragma: no cover - never called
            return a


def test_decorated_function_is_a_stencil_function():
    from repro.core.advection import advect_scalar

    assert isinstance(advect_scalar, StencilFunction)
    assert advect_scalar.spec.name == "advect_scalar"
    assert advect_scalar.spec.halo == 2
    # the undecorated kernel stays reachable for probes/fallbacks
    assert callable(advect_scalar.reference)


# --------------------------------------------------------- declared costs
def test_table_costs_match_the_cost_model():
    """The cost table prices exactly what the declarations say — the
    mapped entries of ASUCA_KERNELS are *derived* from the specs."""
    from repro.perf.costmodel import ASUCA_KERNELS

    derived = table_costs()
    assert set(derived) == {"advection", "helmholtz", "eos_pressure",
                            "warm_rain", "boundary_ops"}
    for table_name, (flops, loads, stores) in derived.items():
        k = ASUCA_KERNELS[table_name]
        assert k.cost.flops_per_point == flops
        assert k.cost.reads_per_point == loads
        assert k.cost.writes_per_point == stores


def test_declared_drift_bands_reach_the_counters():
    from repro.gpu.counters import (
        BYTES_DRIFT_BAND,
        DEFAULT_DRIFT_BAND,
        bytes_drift,
        drift_band,
    )

    # specs with declared bands tighten the counters' gates
    assert declared_flops_band("advection") == drift_band("advection")
    assert declared_bytes_band("warm_rain") is not None
    # a tightened band is strictly inside the permissive default
    lo, hi = drift_band("advection")
    assert DEFAULT_DRIFT_BAND[0] <= lo and hi <= DEFAULT_DRIFT_BAND[1]
    # kernels without a declaration keep the defaults
    assert drift_band("coord_transform") == DEFAULT_DRIFT_BAND
    assert bytes_drift("coord_transform", 1.0, 1.0) is None  # in band
    lo_b, hi_b = declared_bytes_band("warm_rain")
    assert BYTES_DRIFT_BAND[0] <= lo_b and hi_b <= BYTES_DRIFT_BAND[1]


# ----------------------------------------------------------------- executor
def test_backend_validation_and_numba_gating():
    assert set(BACKENDS) == {"reference", "fused", "numba"}
    with pytest.raises(ValueError, match="unknown stencil backend"):
        StencilExecutor("cuda")
    if not numba_available():
        with pytest.raises(RuntimeError, match="numba"):
            StencilExecutor("numba")


def test_default_backend_follows_environment(monkeypatch):
    monkeypatch.delenv("REPRO_STENCIL_BACKEND", raising=False)
    assert default_backend() == "reference"
    monkeypatch.setenv("REPRO_STENCIL_BACKEND", "fused")
    assert default_backend() == "fused"
    monkeypatch.setenv("REPRO_STENCIL_BACKEND", "gpu")
    with pytest.raises(ValueError, match="REPRO_STENCIL_BACKEND"):
        default_backend()


def test_use_executor_scopes_dispatch():
    ex = StencilExecutor("fused")
    assert active_executor() is not ex
    with use_executor(ex):
        assert active_executor() is ex
    assert active_executor() is not ex


def test_fused_dispatch_counts_and_falls_back():
    """A fused impl that declines (NotImplemented) falls back to the
    reference and the stats show it."""
    from repro.core.advection import advect_scalar
    from repro.core.grid import make_grid
    from repro.core.limiter import minmod

    g = make_grid(nx=8, ny=8, nz=6, dx=100.0, dy=100.0, ztop=600.0)
    r = np.random.default_rng(3)
    phi = r.normal(size=(g.nxh, g.nyh, g.nz))
    fx = r.normal(size=(g.nxh + 1, g.nyh, g.nz))
    fy = r.normal(size=(g.nxh, g.nyh + 1, g.nz))
    fz = r.normal(size=(g.nxh, g.nyh, g.nz + 1))

    ex = StencilExecutor("fused")
    with use_executor(ex):
        out_fused = advect_scalar(phi, fx, fy, fz, g)
        # a non-Koren limiter is outside the fused plan: falls back
        out_minmod = advect_scalar(phi, fx, fy, fz, g, limiter=minmod)
    assert ex.accelerated >= 1 and ex.fallbacks >= 1
    assert ex.calls["advect_scalar"] == 2
    np.testing.assert_array_equal(
        out_fused, advect_scalar.reference(phi, fx, fy, fz, g))
    np.testing.assert_array_equal(
        out_minmod, advect_scalar.reference(phi, fx, fy, fz, g,
                                            limiter=minmod))
    assert "fused" in ex.report()


def test_fused_impls_cover_the_hot_dycore():
    load_dycore_specs()
    for name in ("advect_scalar", "advect_u", "advect_v", "advect_w",
                 "limited_face_flux", "horizontal_laplacian_c",
                 "hyperdiffusion_c", "vertical_diffusion_c",
                 "eos_pressure", "helmholtz_solve"):
        assert name in FUSED_IMPLS, name


# --------------------------------------------------------------- pool
def test_buffer_pool_reuses_within_and_across_leases():
    from repro.stencil import BufferPool

    pool = BufferPool()
    with pool.lease() as mem:
        a = mem.take((4, 4))
        b = mem.take((4, 4))
        assert a is not b
    with pool.lease() as mem:
        c = mem.take((4, 4))
    assert pool.allocations == 2 and pool.reuses == 1
    assert c is a or c is b
    stats = pool.stats()
    assert stats["bytes_allocated"] == 2 * 4 * 4 * 8
