"""Backend choice is non-semantic: spec hashes and cached results are
shared across stencil backends (ISSUE: stencil_backend must not change
``canonical_dict()``/``spec_hash()``)."""
import pytest

from repro.api import Experiment, RunSpec
from repro.serve import ResultCache

_SMALL = dict(workload="shear-layer", steps=2, nx=16, ny=16, nz=12)


def test_stencil_backend_is_excluded_from_canonical_dict():
    assert "stencil_backend" in RunSpec._NON_SEMANTIC_FIELDS
    d = RunSpec(**_SMALL).canonical_dict()
    assert "stencil_backend" not in d


def test_spec_hash_is_identical_across_backends():
    hashes = {RunSpec(stencil_backend=b, **_SMALL).spec_hash()
              for b in ("auto", "reference", "fused")}
    assert len(hashes) == 1


def test_semantic_fields_still_change_the_hash():
    base = RunSpec(**_SMALL).spec_hash()
    assert RunSpec(**{**_SMALL, "steps": 3}).spec_hash() != base


def test_result_cache_hits_across_backends():
    """A result computed under the fused backend answers a reference
    submission of the same run (and vice versa) — duplicate forecasts
    stay free no matter which executor produced them."""
    cache = ResultCache(8)
    fused_spec = RunSpec(stencil_backend="fused", **_SMALL)
    result = Experiment(fused_spec).run()
    cache.put(result.spec_hash, result)

    ref_spec = RunSpec(stencil_backend="reference", **_SMALL)
    hit = cache.get(ref_spec.spec_hash())
    assert hit is result
    assert cache.hits == 1 and cache.misses == 0


def test_invalid_stencil_backend_rejected():
    with pytest.raises(ValueError, match="stencil backend"):
        RunSpec(stencil_backend="cuda", **_SMALL).normalized()
