"""The fused backend's core contract: bit-identical results.

The fused implementations change only memory management — pooled
temporaries, ``out=`` ufuncs, precompiled slice plans — never the
arithmetic or its order, so every prognostic field of a fused run must
equal the reference run bit for bit (``np.array_equal``, no tolerance).
Checked on both tier-1 workloads end-to-end through the run facade.
"""
import numpy as np
import pytest

from repro.api import Experiment, RunSpec


def _run(workload: str, backend: str, **kw):
    spec = RunSpec(workload=workload, steps=3, nx=16, ny=16, nz=12,
                   stencil_backend=backend, **kw)
    exp = Experiment(spec).prepare()
    result = exp.run()
    return exp, result


@pytest.mark.parametrize("workload", ["shear-layer", "warm-bubble"])
def test_fused_run_is_bit_identical(workload):
    exp_ref, ref = _run(workload, "reference")
    exp_fused, fused = _run(workload, "fused")

    for name in ref.state.prognostic_names():
        assert np.array_equal(ref.state.get(name), fused.state.get(name)), \
            f"{workload}: {name} differs between reference and fused"
    for q in getattr(ref.state, "q", {}):
        assert np.array_equal(ref.state.q[q], fused.state.q[q]), q

    # the fused run genuinely took the fused path
    assert exp_fused.executor.backend == "fused"
    assert exp_fused.executor.accelerated > 0
    assert exp_fused.executor.pool.reuses > 0
    # ... and the reference run never touched the pool
    assert exp_ref.executor.pool.allocations == 0
    assert fused.stencil_stats["accelerated"] > 0


def test_fused_diagnostics_match_reference():
    _, ref = _run("warm-bubble", "reference")
    _, fused = _run("warm-bubble", "fused")
    assert ref.diagnostics.max_w == fused.diagnostics.max_w
    assert ref.diagnostics.min_theta == fused.diagnostics.min_theta
    assert ref.diagnostics.max_theta == fused.diagnostics.max_theta


def test_fused_multigpu_matches_reference_multigpu():
    """The executor context wraps the decomposed driver too: a fused
    2x2 run gathers to the same bits as the reference 2x2 run."""
    _, ref = _run("shear-layer", "reference", ranks=(2, 2))
    _, fused = _run("shear-layer", "fused", ranks=(2, 2))
    for name in ref.state.prognostic_names():
        assert np.array_equal(ref.state.get(name), fused.state.get(name)), name


def test_environment_default_backend_reaches_runs(monkeypatch):
    """REPRO_STENCIL_BACKEND=fused (the CI stencil job) routes a default
    RunSpec through the fused executor."""
    monkeypatch.setenv("REPRO_STENCIL_BACKEND", "fused")
    spec = RunSpec(workload="shear-layer", steps=1, nx=16, ny=16, nz=12)
    assert spec.normalized().stencil_backend == "fused"
    exp = Experiment(spec).prepare()
    exp.run()
    assert exp.executor.backend == "fused" and exp.executor.accelerated > 0
