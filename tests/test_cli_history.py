"""Tests of the CLI and the history I/O."""
import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.history import HistoryWriter, read_history
from repro.workloads.mountain_wave import make_mountain_wave_case


# ------------------------------------------------------------------ history
class TestHistory:
    def test_roundtrip(self, tmp_path):
        case = make_mountain_wave_case(nx=12, ny=8, nz=8, dx=2000.0,
                                       ztop=8000.0, dt=4.0)
        path = tmp_path / "out" / "h.npz"
        hist = HistoryWriter(case.grid, path, every_seconds=8.0)
        hist.save(case.state)
        for _ in range(4):
            case.run(1)
            hist.maybe_save(case.state)
        p = hist.close()
        assert p.exists()

        meta, snaps = read_history(p)
        assert meta["nx"] == 12 and meta["nz"] == 8
        assert meta["zs"].shape == (12, 8)
        # every 8 s at dt=4 -> t = 0, 8, 16 (two saves skipped)
        assert [s.time for s in snaps] == [0.0, 8.0, 16.0]
        snap = snaps[-1]
        assert snap.fields["rho"].shape == (12, 8, 8)
        assert snap.fields["rhou"].shape == (13, 8, 8)  # staggered kept
        # stored interiors match the live state at that time
        g = case.grid
        h = g.halo

    def test_field_selection(self, tmp_path):
        case = make_mountain_wave_case(nx=12, ny=8, nz=8, dx=2000.0,
                                       ztop=8000.0)
        hist = HistoryWriter(case.grid, tmp_path / "h.npz",
                             fields=["rho", "rhotheta"])
        hist.save(case.state)
        p = hist.close()
        _, snaps = read_history(p)
        assert set(snaps[0].fields) == {"rho", "rhotheta"}

    def test_closed_writer_rejects(self, tmp_path):
        case = make_mountain_wave_case(nx=12, ny=8, nz=8, dx=2000.0,
                                       ztop=8000.0)
        hist = HistoryWriter(case.grid, tmp_path / "h.npz")
        hist.save(case.state)
        hist.close()
        with pytest.raises(RuntimeError):
            hist.save(case.state)

    def test_version_check(self, tmp_path):
        p = tmp_path / "bad.npz"
        np.savez(p, format_version=np.array(999), n_snapshots=np.array(0),
                 times=np.array([]), grid_nx=np.array(1), grid_ny=np.array(1),
                 grid_nz=np.array(1), grid_dx=np.array(1.0),
                 grid_dy=np.array(1.0), grid_ztop=np.array(1.0),
                 grid_z_f=np.zeros(2), grid_zs=np.zeros((1, 1)))
        with pytest.raises(ValueError):
            read_history(p)

    def test_precip_roundtrip(self, tmp_path):
        case = make_mountain_wave_case(nx=12, ny=8, nz=8, dx=2000.0,
                                       ztop=8000.0)
        case.state.precip_accum = np.full((12, 8), 2.5)
        hist = HistoryWriter(case.grid, tmp_path / "h.npz")
        hist.save(case.state)
        _, snaps = read_history(hist.close())
        np.testing.assert_array_equal(snaps[0].precip_accum, 2.5)


# ---------------------------------------------------------------------- CLI
class TestCli:
    def test_parser_commands(self):
        p = build_parser()
        args = p.parse_args(["run", "mountain-wave", "--steps", "3"])
        assert args.workload == "mountain-wave" and args.steps == 3
        args = p.parse_args(["bench", "fig11"])
        assert args.table == "fig11"
        with pytest.raises(SystemExit):
            p.parse_args(["bench", "nope"])

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tesla S1070" in out and "44.3" in out

    def test_bench_tables(self, capsys):
        for table in ("fig4", "roofline", "fig9", "fig11", "table1",
                      "projection"):
            assert main(["bench", table]) == 0
        out = capsys.readouterr().out
        assert "6956x6052x48" in out          # Table I last row
        assert "TSUBAME 2.0" in out

    def test_run_mountain_wave_with_history(self, tmp_path, capsys):
        hist = tmp_path / "run.npz"
        rc = main(["run", "mountain-wave", "--nx", "16", "--ny", "8",
                   "--nz", "8", "--steps", "4", "--dt", "4",
                   "--history", str(hist), "--history-every", "8"])
        assert rc == 0
        assert hist.exists()
        out = capsys.readouterr().out
        assert "max|w|" in out
        _, snaps = read_history(hist)
        assert len(snaps) >= 2

    def test_run_decomposed(self, capsys):
        rc = main(["run", "mountain-wave", "--nx", "16", "--ny", "9",
                   "--nz", "8", "--steps", "2", "--dt", "4",
                   "--ranks", "2x3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "halo traffic" in out


class TestCheckpoint:
    def test_restart_is_bit_identical(self, tmp_path):
        """Run 6 steps straight vs 3 steps + checkpoint + restart + 3
        steps: identical trajectories."""
        from repro.history import load_checkpoint, save_checkpoint

        a = make_mountain_wave_case(nx=14, ny=8, nz=8, dx=2000.0,
                                    ztop=8000.0, dt=4.0)
        b = make_mountain_wave_case(nx=14, ny=8, nz=8, dx=2000.0,
                                    ztop=8000.0, dt=4.0)
        a.run(6)

        b.run(3)
        ckpt = save_checkpoint(b.state, tmp_path / "c.npz")
        restored = load_checkpoint(ckpt, b.grid)
        assert restored.time == b.state.time
        restored = b.model.run(restored, 3)

        for name in a.state.prognostic_names():
            np.testing.assert_array_equal(
                a.state.get(name), restored.get(name), err_msg=name
            )

    def test_checkpoint_shape_validation(self, tmp_path):
        from repro.core.grid import make_grid
        from repro.history import load_checkpoint, save_checkpoint

        case = make_mountain_wave_case(nx=14, ny=8, nz=8, dx=2000.0,
                                       ztop=8000.0)
        p = save_checkpoint(case.state, tmp_path / "c.npz")
        wrong = make_grid(10, 8, 8, 2000.0, 2000.0, 8000.0)
        with pytest.raises(ValueError, match="shape"):
            load_checkpoint(p, wrong)

    def test_checkpoint_keeps_precip(self, tmp_path):
        from repro.history import load_checkpoint, save_checkpoint

        case = make_mountain_wave_case(nx=14, ny=8, nz=8, dx=2000.0,
                                       ztop=8000.0)
        case.state.precip_accum = np.full((14, 8), 1.25)
        p = save_checkpoint(case.state, tmp_path / "c.npz")
        st = load_checkpoint(p, case.grid)
        np.testing.assert_array_equal(st.precip_accum, 1.25)


class TestReproduce:
    def test_generates_document(self, tmp_path):
        from repro.reproduce import SECTIONS, generate_experiments_markdown

        # with an empty report dir every section is flagged as missing
        text = generate_experiments_markdown(tmp_path)
        assert text.count("report missing") == len(SECTIONS)
        assert "Headline summary" in text
        # with one report present, it is embedded verbatim
        (tmp_path / "test_fig11_step_breakdown.txt").write_text("BODY-123")
        text = generate_experiments_markdown(tmp_path)
        assert "BODY-123" in text
        assert text.count("report missing") == len(SECTIONS) - 1

    def test_cli_reproduce(self, tmp_path, capsys):
        out = tmp_path / "EXP.md"
        rc = main(["reproduce", "-o", str(out), "--reports",
                   "benchmarks/reports"])
        assert rc == 0
        assert out.exists()
        assert "paper vs. reproduced" in out.read_text()


class TestCliErrors:
    def test_run_invalid_ranks_format(self):
        with pytest.raises(ValueError):
            main(["run", "mountain-wave", "--nx", "16", "--ny", "9",
                  "--nz", "8", "--steps", "1", "--ranks", "banana"])

    def test_run_warm_bubble_smoke(self, capsys):
        rc = main(["run", "warm-bubble", "--nx", "10", "--ny", "10",
                   "--nz", "10", "--steps", "2", "--dt", "4"])
        assert rc == 0
        assert "max|w|" in capsys.readouterr().out

    def test_run_ice_flag(self, capsys):
        rc = main(["run", "warm-bubble", "--nx", "10", "--ny", "10",
                   "--nz", "10", "--steps", "1", "--dt", "4", "--ice"])
        assert rc == 0

    def test_bench_fig10_prints_efficiency(self, capsys):
        assert main(["bench", "fig10"]) == 0
        assert "efficiency" in capsys.readouterr().out
