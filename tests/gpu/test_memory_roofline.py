"""Tests of memory accounting, the roofline (Eq. 6), coalescing and
shared-memory models."""
import numpy as np
import pytest

from repro.gpu.coalescing import ArrayOrder, bandwidth_fraction
from repro.gpu.device import GPUDevice
from repro.gpu.kernel import Kernel, KernelCostModel, LaunchConfig
from repro.gpu.memory import (
    ASUCA_RESIDENT_FIELDS,
    DeviceAllocator,
    DeviceArray,
    max_grid_fits,
)
from repro.gpu.roofline import (
    arithmetic_intensity,
    attainable_flops,
    kernel_time,
    ridge_intensity,
)
from repro.gpu.sharedmem import ASUCA_ADVECTION_TILE, TileSpec, global_reads_per_point
from repro.gpu.spec import GIB, Precision, TESLA_S1070


# ------------------------------------------------------------------ memory
def test_paper_memory_limits():
    """Sec. IV-B: 4 GB limits single precision to 320x256x48 and double to
    320x128x48 (ny in multiples of 32, as the paper's sweep)."""
    cap = TESLA_S1070.mem_capacity
    ny_sp = max_grid_fits(cap, 320, 48, 4)
    ny_dp = max_grid_fits(cap, 320, 48, 8)
    assert 256 <= (ny_sp // 32) * 32 < 288
    assert 128 <= (ny_dp // 32) * 32 < 160


def test_device_array_oom():
    dev = GPUDevice(TESLA_S1070)
    a = DeviceArray(dev, (1024, 1024, 256), np.float32)  # 1 GiB
    assert dev.allocated_bytes == GIB
    with pytest.raises(MemoryError):
        DeviceArray(dev, (1024, 1024, 1024), np.float32)  # 4 GiB more
    a.free()
    assert dev.allocated_bytes == 0
    a.free()  # idempotent
    assert dev.allocated_bytes == 0


def test_transfers_move_data_and_charge_time():
    dev = GPUDevice(TESLA_S1070)
    host = np.arange(1000, dtype=np.float32)
    d = DeviceArray(dev, (1000,), np.float32)
    ev = d.copy_from_host(host)
    np.testing.assert_array_equal(d.data, host)
    assert ev.time == pytest.approx(host.nbytes / TESLA_S1070.pcie_bandwidth)
    out = np.empty_like(host)
    d.copy_to_host(out)
    np.testing.assert_array_equal(out, host)
    assert dev.busy_time("h2d") > 0 and dev.busy_time("d2h") > 0


def test_allocator_fits():
    dev = GPUDevice(TESLA_S1070)
    alloc = DeviceAllocator(dev)
    assert alloc.fits(320, 256, 48, 4)
    assert not alloc.fits(320, 288, 48, 4)
    assert not alloc.fits(320, 160, 48, 8)


# ---------------------------------------------------------------- roofline
def test_eq6_limits():
    """Eq. 6: tiny intensity -> bandwidth bound; huge -> compute bound."""
    lo = attainable_flops(1e-3, TESLA_S1070)
    assert lo == pytest.approx(1e-3 * TESLA_S1070.mem_bandwidth, rel=1e-3)
    hi = attainable_flops(1e4, TESLA_S1070)
    assert hi == pytest.approx(TESLA_S1070.peak_flops_sp, rel=1e-2)


def test_ridge_point():
    r = ridge_intensity(TESLA_S1070)
    assert r == pytest.approx(691.2e9 / 102.4e9)
    # at the ridge, both terms contribute equally
    perf = attainable_flops(r, TESLA_S1070)
    assert perf == pytest.approx(TESLA_S1070.peak_flops_sp / 2, rel=1e-6)


def test_kernel_time_monotonic():
    t1 = kernel_time(1e9, 1e9, TESLA_S1070)
    t2 = kernel_time(2e9, 1e9, TESLA_S1070)
    t3 = kernel_time(1e9, 2e9, TESLA_S1070)
    assert t2 > t1 and t3 > t1
    # alpha adds directly
    assert kernel_time(1e9, 1e9, TESLA_S1070, alpha=1.0) == pytest.approx(t1 + 1.0)


def test_double_precision_slower():
    t_sp = kernel_time(1e9, 1e9, TESLA_S1070, Precision.SINGLE)
    t_dp = kernel_time(1e9, 1e9, TESLA_S1070, Precision.DOUBLE)
    assert t_dp > t_sp


def test_saturation_curve():
    """Small launches see reduced effective bandwidth (Fig. 4's rise)."""
    t_small = kernel_time(0, 1e6, TESLA_S1070, n_points=1e4)
    t_large = kernel_time(0, 1e6, TESLA_S1070, n_points=1e8)
    assert t_small > t_large
    assert TESLA_S1070.effective_bandwidth(1e12) == pytest.approx(
        TESLA_S1070.mem_bandwidth, rel=1e-3
    )


def test_arithmetic_intensity():
    assert arithmetic_intensity(10.0, 40.0) == 0.25


# -------------------------------------------------------------- coalescing
def test_coalesced_vs_strided():
    f_good = bandwidth_fraction(ArrayOrder.XZY)
    f_bad = bandwidth_fraction(ArrayOrder.KIJ)
    assert f_good == 1.0
    assert f_bad < 0.1  # the paper's reason to re-order arrays
    assert bandwidth_fraction(ArrayOrder.IJK) == f_bad


def test_coalesced_double_precision():
    # 32 threads x 8 B = 256 B -> 4 transactions of 64 B: still perfect
    assert bandwidth_fraction(ArrayOrder.XZY, itemsize=8) == 1.0


# -------------------------------------------------------------- shared mem
def test_paper_tile_geometry():
    t = ASUCA_ADVECTION_TILE
    assert t.tile_elements == (64 + 3) * (4 + 3)  # Fig. 3
    assert t.shared_bytes(4) == 67 * 7 * 4
    assert t.fits(TESLA_S1070.shared_mem_per_sm, 4, blocks_per_sm=8)


def test_tiling_cuts_global_reads():
    naive = global_reads_per_point(13, tile=None)
    tiled = global_reads_per_point(13)
    assert naive == 13.0
    assert tiled == pytest.approx((67 * 7) / (64 * 4))
    assert tiled < 2.0


def test_kernel_launch_config_geometry():
    lc = LaunchConfig(block=(64, 4, 1), march_axis="y")
    assert lc.blocks_for(320, 256, 48) == (5, 12, 1)
    lc_z = LaunchConfig(block=(64, 4, 1), march_axis="z")
    assert lc_z.blocks_for(320, 256, 48) == (5, 64, 1)


def test_kernel_launch_runs_function_and_charges_time():
    dev = GPUDevice(TESLA_S1070)
    calls = []
    k = Kernel("probe", KernelCostModel(10.0, 3.0, 1.0),
               fn=lambda x: calls.append(x) or x * 2)
    result, op = k.launch(dev, 1e6, args=(21,))
    assert result == 42 and calls == [21]
    assert op.duration > 0
    assert op.flops == 1e7
    # bit-identical numerics: the function result is untouched by timing
    r2, _ = k.launch(dev, 1e6, args=(21,))
    assert r2 == result


def test_kernel_kij_ordering_slower():
    k = Kernel("stencil", KernelCostModel(10.0, 3.0, 1.0))
    t_good = k.duration(1e7, TESLA_S1070, order=ArrayOrder.XZY)
    t_bad = k.duration(1e7, TESLA_S1070, order=ArrayOrder.KIJ)
    assert t_bad > 3.0 * t_good  # uncoalesced access is catastrophic


def test_grid_bytes_accounting():
    dev = GPUDevice(TESLA_S1070)
    alloc = DeviceAllocator(dev, n_fields=10)
    assert alloc.grid_bytes(100, 100, 10, 4) == 100 * 100 * 10 * 4 * 10


def test_attainable_flops_with_alpha():
    """A per-byte launch overhead lowers the whole curve."""
    clean = attainable_flops(1.0, TESLA_S1070)
    slowed = attainable_flops(1.0, TESLA_S1070, alpha_per_byte=1e-9)
    assert slowed < clean


def test_effective_bandwidth_monotone():
    bands = [TESLA_S1070.effective_bandwidth(n) for n in (1e3, 1e5, 1e7)]
    assert bands[0] < bands[1] < bands[2] <= TESLA_S1070.mem_bandwidth
