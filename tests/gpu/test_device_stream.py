"""Tests of the virtual device: streams, engines, events, scheduling."""
import pytest

from repro.gpu.device import Event, GPUDevice
from repro.gpu.spec import TESLA_S1070


@pytest.fixture
def dev():
    return GPUDevice(TESLA_S1070)


def test_stream_in_order(dev):
    s = dev.create_stream()
    op1 = dev.schedule("a", "kernel", s, 1.0)
    op2 = dev.schedule("b", "kernel", s, 2.0)
    assert op1.start == 0.0 and op1.end == 1.0
    assert op2.start == 1.0 and op2.end == 3.0
    assert dev.elapsed() == 3.0


def test_kernels_serialize_across_streams(dev):
    """GT200 runs one kernel at a time: kernels on different streams share
    the compute engine."""
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("k1", "kernel", s1, 1.0)
    op2 = dev.schedule("k2", "kernel", s2, 1.0)
    assert op2.start == 1.0  # waited for the compute engine


def test_copy_overlaps_kernel(dev):
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("k", "kernel", s1, 2.0)
    cp = dev.schedule("c", "h2d", s2, 1.0)
    assert cp.start == 0.0  # different engine: concurrent
    assert dev.elapsed() == 2.0


def test_single_copy_engine_serializes_h2d_d2h(dev):
    """The S1070 has one DMA engine: opposite-direction copies queue."""
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("up", "h2d", s1, 1.0)
    dn = dev.schedule("down", "d2h", s2, 1.0)
    assert dn.start == 1.0


def test_dual_copy_engines():
    dev = GPUDevice(TESLA_S1070, copy_engines=2)
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("up", "h2d", s1, 1.0)
    dn = dev.schedule("down", "d2h", s2, 1.0)
    assert dn.start == 0.0


def test_mpi_engine_independent(dev):
    s = dev.create_stream()
    dev.schedule("k", "kernel", s, 2.0)
    s2 = dev.create_stream()
    m = dev.schedule("net", "mpi", s2, 1.5)
    assert m.start == 0.0


def test_events_create_dependencies(dev):
    s1, s2 = dev.create_stream(), dev.create_stream()
    op = dev.schedule("c1", "h2d", s1, 2.0)
    ev = s1.record_event()
    s2.wait_event(ev)
    nxt = dev.schedule("c2", "mpi", s2, 1.0)
    assert nxt.start == 2.0
    assert ev.time == op.end


def test_after_dependencies(dev):
    s1, s2 = dev.create_stream(), dev.create_stream()
    op = dev.schedule("a", "h2d", s1, 3.0)
    dep = dev.schedule("b", "mpi", s2, 1.0, after=(Event(op.end),))
    assert dep.start == 3.0


def test_synchronize_aligns_everything(dev):
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("a", "kernel", s1, 1.0)
    dev.schedule("b", "h2d", s2, 5.0)
    t = dev.synchronize()
    assert t == 5.0
    nxt = dev.schedule("c", "kernel", s1, 1.0)
    assert nxt.start == 5.0


def test_busy_time_filters(dev):
    s = dev.create_stream()
    dev.schedule("a", "kernel", s, 1.0, tag="compute")
    dev.schedule("b", "mpi", s, 2.0, tag="mpi")
    dev.schedule("c", "mpi", s, 0.5, tag="skew")
    assert dev.busy_time("kernel") == 1.0
    assert dev.busy_time("mpi") == 2.5
    assert dev.busy_time("mpi", tag="skew") == 0.5
    assert dev.busy_time(tag="compute") == 1.0


def test_flops_accounting(dev):
    s = dev.create_stream()
    dev.schedule("a", "kernel", s, 1.0, flops=5e9)
    dev.schedule("b", "kernel", s, 1.0, flops=5e9)
    assert dev.total_flops() == 1e10
    assert dev.sustained_flops() == pytest.approx(5e9)


def test_reset(dev):
    s = dev.create_stream()
    dev.schedule("a", "kernel", s, 1.0)
    dev.reset()
    assert dev.elapsed() == 0.0
    op = dev.schedule("b", "kernel", s, 1.0)
    assert op.start == 0.0


def test_negative_duration_rejected(dev):
    with pytest.raises(ValueError):
        dev.schedule("bad", "kernel", dev.default_stream, -1.0)


# ------------------------------------------------------- event ordering
# These pin the record_event/wait_event semantics the racecheck pass
# builds its happens-before relation from (op provenance, dependency
# edges, synchronize epochs).

def test_record_event_carries_op_provenance(dev):
    s = dev.create_stream()
    assert s.record_event().op is None     # nothing recorded yet
    op = dev.schedule("a", "h2d", s, 1.0)
    ev = s.record_event()
    assert ev.op is op
    assert ev.time == op.end


def test_wait_event_records_dependency_edge(dev):
    s1, s2 = dev.create_stream(), dev.create_stream()
    op = dev.schedule("a", "h2d", s1, 2.0)
    s2.wait_event(s1.record_event())
    nxt = dev.schedule("b", "mpi", s2, 1.0)
    assert op.seq in nxt.deps
    assert nxt.start == op.end


def test_after_events_record_dependency_edges(dev):
    s1, s2 = dev.create_stream(), dev.create_stream()
    op = dev.schedule("a", "h2d", s1, 2.0)
    dep = dev.schedule("b", "mpi", s2, 1.0, after=(Event(op.end, op=op),))
    assert op.seq in dep.deps


def test_cross_stream_dependency_chain(dev):
    """a -> b -> c across three streams: each link is an event edge, and
    both timing and dependency provenance reflect the chain."""
    s1, s2, s3 = (dev.create_stream() for _ in range(3))
    a = dev.schedule("a", "h2d", s1, 1.0)
    s2.wait_event(s1.record_event())
    b = dev.schedule("b", "mpi", s2, 2.0)
    s3.wait_event(s2.record_event())
    c = dev.schedule("c", "d2h", s3, 1.0)
    assert b.start == a.end and c.start == b.end
    assert a.seq in b.deps and b.seq in c.deps


def test_wait_event_applies_to_next_op_only(dev):
    s1, s2 = dev.create_stream(), dev.create_stream()
    op = dev.schedule("a", "h2d", s1, 5.0)
    s2.wait_event(s1.record_event())
    first = dev.schedule("b", "mpi", s2, 1.0)
    second = dev.schedule("c", "mpi", s2, 1.0)
    assert op.seq in first.deps
    assert op.seq not in second.deps       # ordered transitively via s2


def test_synchronize_advances_epoch_and_clears_pending(dev):
    s1, s2 = dev.create_stream(), dev.create_stream()
    a = dev.schedule("a", "h2d", s1, 1.0)
    s2.wait_event(s1.record_event())
    dev.synchronize()
    b = dev.schedule("b", "mpi", s2, 1.0)
    assert b.epoch == a.epoch + 1
    assert a.seq not in b.deps             # barrier superseded the edge


def test_reset_clears_ordering_state(dev):
    s = dev.create_stream()
    dev.schedule("a", "kernel", s, 1.0)
    dev.synchronize()
    dev.reset()
    op = dev.schedule("b", "kernel", s, 1.0)
    assert op.seq == 0 and op.epoch == 0 and op.deps == ()
