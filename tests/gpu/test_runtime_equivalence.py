"""The paper's correctness claim, transposed: running through the virtual
GPU produces results identical to the direct NumPy execution (the GPU
path is the same arithmetic plus a simulated clock), while the device
timeline reports the modeled Tesla performance."""
import numpy as np
import pytest

from repro.gpu.device import GPUDevice
from repro.gpu.runtime import GpuAsucaRunner
from repro.gpu.spec import DeviceSpec, Precision, TESLA_S1070
from repro.workloads.mountain_wave import make_mountain_wave_case


@pytest.fixture(scope="module")
def cases():
    a = make_mountain_wave_case(nx=16, ny=8, nz=10, dx=2000.0, ztop=12000.0,
                                dt=4.0, ns=4)
    b = make_mountain_wave_case(nx=16, ny=8, nz=10, dx=2000.0, ztop=12000.0,
                                dt=4.0, ns=4)
    return a, b


def test_gpu_path_bit_identical(cases):
    direct, via_gpu = cases
    runner = GpuAsucaRunner(via_gpu.model)
    runner.upload(via_gpu.state)
    st_direct = direct.state
    st_gpu = via_gpu.state
    for _ in range(3):
        st_direct = direct.model.step(st_direct)
        st_gpu = runner.step(st_gpu)
    for name in st_direct.prognostic_names():
        np.testing.assert_array_equal(
            st_direct.get(name), st_gpu.get(name), err_msg=name
        )


def test_device_time_accounting(cases):
    _, case = cases
    runner = GpuAsucaRunner(case.model)
    runner.upload(case.state)
    st = runner.run(case.state, 2)
    dev = runner.device
    assert dev.busy_time("kernel") > 0
    # Fig. 1: input transfer happened once, during upload
    assert dev.busy_time("h2d", tag="init") > 0
    assert runner.steps_taken == 2
    assert runner.modeled_step_time() > 0
    # tiny grids are launch-overhead dominated (far below the 44 GFlops
    # plateau — the left edge of Fig. 4's rising curve)
    assert 0.05 < runner.sustained_gflops() < 50.0
    runner.download(st)
    assert dev.busy_time("d2h", tag="output") > 0


def test_upload_respects_capacity():
    tiny = DeviceSpec(
        name="tiny", peak_flops_sp=1e12, peak_flops_dp=5e11,
        mem_bandwidth=1e11, mem_capacity=100_000, pcie_bandwidth=1e9,
    )
    case = make_mountain_wave_case(nx=16, ny=8, nz=10, dx=2000.0,
                                   ztop=12000.0)
    runner = GpuAsucaRunner(case.model, GPUDevice(tiny))
    with pytest.raises(MemoryError):
        runner.upload(case.state)
