"""Tests of the bound dycore kernels and the model-vs-reality ranking."""
import numpy as np
import pytest

from repro.core.grid import make_grid
from repro.core.reference import make_reference_state
from repro.gpu.asuca_kernels import bind_dycore_kernels, measure_kernel_times
from repro.gpu.device import GPUDevice
from repro.gpu.spec import Precision, TESLA_S1070
from repro.workloads.sounding import constant_stability_sounding


@pytest.fixture(scope="module")
def setup():
    g = make_grid(32, 24, 16, 1000.0, 1000.0, 8000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    return g, ref


def test_bound_kernels_execute(setup):
    g, ref = setup
    kernels = bind_dycore_kernels(g, ref)
    dev = GPUDevice(TESLA_S1070)
    rho_hat = ref.rho_c * g.jac[:, :, None]
    result, op = kernels["coord_transform"].launch(
        dev, g.n_interior_cells, args=(rho_hat,)
    )
    np.testing.assert_allclose(result, ref.rho_c)  # J = 1: identity here
    assert op.duration > 0
    # EOS kernel: physical result through the launch path
    result, _ = kernels["eos_pressure"].launch(
        dev, g.n_interior_cells, args=(ref.rhotheta_c * g.jac[:, :, None],)
    )
    np.testing.assert_allclose(result, ref.p_c, rtol=1e-10)


def test_launch_matches_direct_call(setup):
    """The launch path is the same arithmetic as calling the function."""
    g, ref = setup
    kernels = bind_dycore_kernels(g, ref)
    dev = GPUDevice(TESLA_S1070)
    rng = np.random.default_rng(1)
    pp = rng.normal(size=g.shape_c)
    direct = kernels["pgf_x"].fn(pp)
    launched, _ = kernels["pgf_x"].launch(dev, g.n_interior_cells, args=(pp,))
    np.testing.assert_array_equal(direct, launched)


def test_measured_ranking_matches_model(setup):
    """Both the host CPU (NumPy) and the modeled GPU are bandwidth bound
    on these kernels, so the cheap/expensive ordering must agree: the
    1-flop coordinate transform is the fastest per launch and the
    advection stencil the slowest of the streaming kernels."""
    g, ref = setup
    wall = measure_kernel_times(g, ref)
    assert wall["coord_transform"] < wall["advection"]
    assert wall["pgf_x"] < wall["advection"]
    # and the model agrees on that ordering
    from repro.perf.costmodel import ASUCA_KERNELS

    model = {
        name: ASUCA_KERNELS[name].duration(
            g.n_interior_cells, TESLA_S1070, Precision.SINGLE
        )
        for name in wall
    }
    assert model["coord_transform"] < model["advection"]
    assert model["pgf_x"] < model["advection"]
