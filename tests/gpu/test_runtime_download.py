"""Regression test: ``GpuAsucaRunner.download`` must write the device
data into the caller's state arrays (it used to copy into a throwaway
``np.empty_like`` buffer, so downloaded fields never reached the
caller)."""
import numpy as np

from repro.gpu.runtime import GpuAsucaRunner
from repro.workloads.mountain_wave import make_mountain_wave_case


def test_download_writes_into_state_arrays():
    case = make_mountain_wave_case(nx=16, ny=8, nz=10, dx=2000.0,
                                   ztop=12000.0, dt=4.0, ns=4)
    runner = GpuAsucaRunner(case.model)
    runner.upload(case.state)
    st = runner.step(case.state)

    # poison the host-side output fields, then fetch them back from the
    # device: the downloaded values must be visible in the state
    names = ["rhou", "rhov", "rhow", "rhotheta"]
    expected = {n: runner._device_arrays[n].data.copy() for n in names}
    for n in names:
        st.get(n)[:] = -123.0
    runner.download(st, names)
    for n in names:
        np.testing.assert_array_equal(st.get(n), expected[n], err_msg=n)
        assert not np.any(st.get(n) == -123.0), f"{n}: sentinel survived"


def test_download_default_fields_and_accounting():
    case = make_mountain_wave_case(nx=16, ny=8, nz=10, dx=2000.0,
                                   ztop=12000.0, dt=4.0, ns=4)
    runner = GpuAsucaRunner(case.model)
    runner.upload(case.state)
    st = runner.step(case.state)
    st.rhotheta[:] = -1.0
    runner.download(st)
    # overwritten by device data, and the PCIe time was charged
    assert not np.any(st.rhotheta == -1.0)
    assert runner.device.busy_time("d2h", tag="output") > 0
