"""Tests of the GT200/Fermi occupancy calculator, including the paper's
own launch configuration."""
import pytest

from repro.gpu.occupancy import (
    FERMI_LIMITS,
    GT200_LIMITS,
    Occupancy,
    occupancy,
)
from repro.gpu.sharedmem import ASUCA_ADVECTION_TILE


def test_paper_advection_block_is_well_occupied():
    """(64, 4, 1) = 256 threads with the (64+3)x(4+3) SP tile: 4 resident
    blocks on GT200 -> 100% thread-limited occupancy, comfortably hiding
    the 400-600 cycle memory latency the paper cites."""
    occ = occupancy(
        64 * 4,
        registers_per_thread=16,
        shared_per_block=ASUCA_ADVECTION_TILE.shared_bytes(4),
        limits=GT200_LIMITS,
    )
    assert occ.blocks_per_sm == 4
    assert occ.occupancy == pytest.approx(1.0)
    assert occ.latency_hiding_ok


def test_shared_memory_can_become_the_limiter():
    """A 6 KB/block tile allows only 2 blocks in 16 KB-granularity terms."""
    occ = occupancy(128, shared_per_block=6 * 1024, registers_per_thread=10)
    assert occ.limiter == "shared memory"
    assert occ.blocks_per_sm == 2


def test_register_pressure_limits():
    occ = occupancy(256, registers_per_thread=60)
    assert occ.limiter == "registers"
    assert occ.blocks_per_sm == 1
    assert not occ.latency_hiding_ok


def test_block_cap():
    occ = occupancy(32, registers_per_thread=8, shared_per_block=0)
    assert occ.limiter == "block limit"
    assert occ.blocks_per_sm == 8
    assert occ.occupancy == pytest.approx(8 / 32)


def test_zero_blocks_possible():
    occ = occupancy(512, shared_per_block=17 * 1024)
    assert occ.blocks_per_sm == 0 and occ.occupancy == 0.0


def test_fermi_more_generous():
    o_gt = occupancy(256, registers_per_thread=32, limits=GT200_LIMITS)
    o_fermi = occupancy(256, registers_per_thread=32, limits=FERMI_LIMITS)
    assert o_fermi.blocks_per_sm >= o_gt.blocks_per_sm
    assert o_fermi.warps_per_sm > o_gt.warps_per_sm


def test_validation():
    with pytest.raises(ValueError):
        occupancy(0)
    with pytest.raises(ValueError):
        occupancy(2048, limits=GT200_LIMITS)
