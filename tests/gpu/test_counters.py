"""The per-launch FLOP/byte accounting layer: CountingHook measurement,
runner/multigpu wiring, and the guarantee that counting never perturbs
the run (bit-identical numerics, identical modeled timeline)."""
import numpy as np
import pytest

from repro.api import Experiment, RunSpec
from repro.gpu.counters import CountingHook, MeasuredKernel
from repro.gpu.runtime import GpuAsucaRunner
from repro.workloads.mountain_wave import make_mountain_wave_case


def _case():
    return make_mountain_wave_case(nx=16, ny=8, nz=10, dx=2000.0,
                                   ztop=12000.0, dt=4.0, ns=4)


# --------------------------------------------------------------- hook
def test_hook_measures_every_bound_kernel():
    case = _case()
    hook = CountingHook(case.model.grid, case.model.ref)
    assert hook.begin_step(0, case.state)
    for name in hook.kernels:
        pp = hook.per_point(name)
        assert pp is not None, f"{name} not measured"
        assert pp["reads"] > 0 or pp["writes"] > 0, name
    # compute kernels actually count flops; pure copies count zero
    assert hook.per_point("advection")["flops"] > 0
    assert hook.per_point("warm_rain")["flops"] > 0
    assert hook.per_point("array_copy")["flops"] == 0


def test_hook_sampling_cadence():
    case = _case()
    hook = CountingHook(case.model.grid, case.model.ref, sample_every=2)
    assert hook.begin_step(0, case.state) is True
    assert hook.begin_step(1, case.state) is False
    assert hook.begin_step(2, case.state) is True
    assert hook.steps_seen == 3 and hook.steps_sampled == 2
    with pytest.raises(ValueError):
        CountingHook(case.model.grid, case.model.ref, sample_every=0)


def test_hook_annotate_scales_to_launch():
    case = _case()
    hook = CountingHook(case.model.grid, case.model.ref)
    hook.begin_step(0, case.state)

    class _Op:
        measured = None

    op = _Op()
    hook.annotate(op, "advection", 1000)
    m = op.measured
    pp = hook.per_point("advection")
    assert m["flops"] == pytest.approx(pp["flops"] * 1000)
    assert m["bytes_read"] == pytest.approx(pp["reads"] * 1000 * 4)  # SP
    assert m["intensity"] == pytest.approx(
        m["flops"] / (m["bytes_read"] + m["bytes_written"]))
    assert m["points"] == 1000.0
    mk = hook.measured["advection"]
    assert isinstance(mk, MeasuredKernel) and mk.launches == 1
    # a kernel the hook never measured stays unannotated
    op2 = _Op()
    hook.annotate(op2, "no_such_kernel", 10)
    assert op2.measured is None


# ------------------------------------------------------------- runner
def test_runner_annotates_sampled_steps_only():
    case = _case()
    runner = GpuAsucaRunner(case.model, counters=True, counter_every=2)
    runner.upload(case.state)
    runner.run(case.state, 3)   # steps 0, 1, 2 — 0 and 2 sampled
    kernel_ops = [op for op in runner.device.timeline if op.kind == "kernel"]
    measured = [op for op in kernel_ops if op.measured is not None]
    assert 0 < len(measured) == 2 * len(kernel_ops) // 3


def test_counters_do_not_perturb_run():
    """Counted and uncounted runs must agree bit-for-bit in state and in
    the modeled device timeline (names, kinds, durations)."""
    plain_case, counted_case = _case(), _case()
    plain = GpuAsucaRunner(plain_case.model)
    counted = GpuAsucaRunner(counted_case.model, counters=True)
    plain.upload(plain_case.state)
    counted.upload(counted_case.state)
    st_p, st_c = plain_case.state, counted_case.state
    for _ in range(2):
        st_p = plain.step(st_p)
        st_c = counted.step(st_c)
    for name in st_p.prognostic_names():
        np.testing.assert_array_equal(st_p.get(name), st_c.get(name),
                                      err_msg=name)
    tp = [op for op in plain.device.timeline if op.kind == "kernel"]
    tc = [op for op in counted.device.timeline if op.kind == "kernel"]
    assert [(o.name, o.duration) for o in tp] == \
           [(o.name, o.duration) for o in tc]


# ---------------------------------------------------------------- api
def test_runspec_counters_validation():
    assert RunSpec(counters=True).normalized().backend == "gpu"
    with pytest.raises(ValueError):
        RunSpec(counters=True, backend="cpu").normalized()
    with pytest.raises(ValueError):
        RunSpec(counter_every=0).normalized()
    # counters are observability, not semantics: same run identity
    a = RunSpec(workload="shear-layer", backend="gpu").normalized()
    b = RunSpec(workload="shear-layer", backend="gpu",
                counters=True).normalized()
    assert a.spec_hash() == b.spec_hash()


def test_experiment_gpu_counters():
    exp = Experiment(RunSpec(workload="shear-layer", steps=2,
                             nx=16, ny=16, nz=12, backend="gpu",
                             counters=True)).prepare()
    exp.run()
    kernel_ops = [op for op in exp.runner.device.timeline
                  if op.kind == "kernel"]
    assert kernel_ops
    assert all(op.measured is not None for op in kernel_ops)


def test_experiment_multigpu_counters_per_rank():
    exp = Experiment(RunSpec(workload="shear-layer", steps=1,
                             nx=16, ny=16, nz=12, ranks=(2, 2),
                             counters=True)).prepare()
    exp.run()
    assert exp.machine._dev_counting is not None
    assert len(exp.machine.devices) == 4
    for device in exp.machine.devices:
        measured = [op for op in device.timeline
                    if op.kind == "kernel" and op.measured is not None]
        assert measured, device.label
