"""DeviceArray/runner lifecycle semantics: idempotent free, re-upload
replacing staged arrays, and runner teardown — the behaviors the
sanitizer's memcheck pass keys on."""
import numpy as np

from repro.gpu.device import GPUDevice
from repro.gpu.memory import DeviceArray
from repro.gpu.runtime import GpuAsucaRunner
from repro.gpu.spec import TESLA_S1070
from repro.workloads.mountain_wave import make_mountain_wave_case


def _case():
    return make_mountain_wave_case(nx=16, ny=8, nz=10, dx=2000.0,
                                   ztop=12000.0, dt=4.0, ns=4)


def test_free_is_idempotent():
    dev = GPUDevice(TESLA_S1070)
    arr = DeviceArray(dev, (8, 8), np.float32)
    nbytes = arr.nbytes
    assert dev.allocated_bytes == nbytes
    arr.free()
    assert dev.allocated_bytes == 0
    arr.free()                       # second free must not double-decrement
    assert dev.allocated_bytes == 0


def test_buffer_identity_is_stable_and_unique():
    dev = GPUDevice(TESLA_S1070)
    a = DeviceArray(dev, (4,), np.float32, name="rho")
    b = DeviceArray(dev, (4,), np.float32, name="rho")
    assert a.buffer != b.buffer
    assert "rho" in a.buffer and dev.label in a.buffer


def test_reupload_replaces_staged_arrays_without_leaking():
    case = _case()
    runner = GpuAsucaRunner(case.model)
    runner.upload(case.state)
    first = dict(runner._device_arrays)
    bytes_after_first = runner.device.allocated_bytes

    runner.upload(case.state)        # stale arrays freed and replaced
    assert runner.device.allocated_bytes == bytes_after_first
    for name, stale in first.items():
        assert stale._freed
        assert runner._device_arrays[name] is not stale


def test_teardown_frees_everything():
    case = _case()
    runner = GpuAsucaRunner(case.model)
    runner.upload(case.state)
    assert runner.device.allocated_bytes > 0
    runner.teardown()
    assert runner.device.allocated_bytes == 0
    assert runner._device_arrays == {}
    runner.teardown()                # idempotent: nothing left to free
    assert runner.device.allocated_bytes == 0


def test_step_after_reupload_keeps_device_copies_current():
    case = _case()
    runner = GpuAsucaRunner(case.model)
    runner.upload(case.state)
    runner.upload(case.state)
    st = runner.step(case.state)
    np.testing.assert_array_equal(runner._device_arrays["rhou"].data,
                                  st.rhou)
