"""Unit tests of the analytic linear mountain-wave reference solution."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.validation import linear_mountain_wave_w, pattern_correlation


def _bell(nx=128, dx=1000.0, h0=100.0, a=6000.0):
    x = (np.arange(nx) + 0.5) * dx
    return h0 / (1.0 + ((x - nx * dx / 2) / a) ** 2), x


def test_surface_kinematic_condition():
    """At z = 0 the linear solution is w = U dh/dx (flow along terrain)."""
    h, x = _bell()
    dx = x[1] - x[0]
    w0 = linear_mountain_wave_w(h, dx, np.array([0.0]), u0=10.0, n_bv=0.01)[:, 0]
    dhdx = np.gradient(h, dx)
    # spectral derivative vs finite difference: close but not identical
    assert pattern_correlation(w0, 10.0 * dhdx) > 0.999
    assert np.abs(w0).max() == pytest.approx(np.abs(10.0 * dhdx).max(), rel=0.05)


def test_hydrostatic_phase_repeats():
    """In the hydrostatic regime the field repeats with the vertical
    wavelength 2 pi U / N."""
    h, x = _bell(a=20000.0)  # N a / U = 20: deeply hydrostatic
    dx = x[1] - x[0]
    lz = 2 * np.pi * 10.0 / 0.01
    w = linear_mountain_wave_w(h, dx, np.array([500.0, 500.0 + lz]),
                               u0=10.0, n_bv=0.01)
    assert pattern_correlation(w[:, 0], w[:, 1]) > 0.99
    assert np.abs(w[:, 1]).max() == pytest.approx(np.abs(w[:, 0]).max(), rel=0.02)


def test_evanescent_decay_for_narrow_ridge():
    """A ridge much narrower than U/N (here a = 200 m << 1000 m) forces
    mostly evanescent modes: the response decays with height."""
    h, x = _bell(nx=256, dx=100.0, a=200.0)
    w = linear_mountain_wave_w(h, 100.0, np.array([100.0, 2000.0]),
                               u0=10.0, n_bv=0.01)
    assert np.abs(w[:, 1]).max() < 0.3 * np.abs(w[:, 0]).max()


def test_amplitude_linear_in_height():
    h, x = _bell()
    dx = x[1] - x[0]
    z = np.array([1000.0])
    w1 = linear_mountain_wave_w(h, dx, z, u0=10.0, n_bv=0.01)
    w2 = linear_mountain_wave_w(2 * h, dx, z, u0=10.0, n_bv=0.01)
    np.testing.assert_allclose(w2, 2 * w1, rtol=1e-12)


def test_flat_terrain_zero():
    w = linear_mountain_wave_w(np.zeros(64), 1000.0, np.array([0.0, 5000.0]),
                               u0=10.0, n_bv=0.01)
    np.testing.assert_allclose(w, 0.0, atol=1e-15)


# ---------------------------------------------------------- correlation
def test_pattern_correlation_basics():
    a = np.array([1.0, 2.0, 3.0])
    assert pattern_correlation(a, a) == pytest.approx(1.0)
    assert pattern_correlation(a, -a) == pytest.approx(-1.0)
    assert pattern_correlation(a, np.full(3, 7.0)) == 0.0  # constant field


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100), scale=st.floats(0.1, 10.0),
       offset=st.floats(-5, 5))
def test_pattern_correlation_affine_invariance(seed, scale, offset):
    r = np.random.default_rng(seed)
    a = r.normal(size=50)
    assert pattern_correlation(a, scale * a + offset) == pytest.approx(1.0)
    assert abs(pattern_correlation(a, r.normal(size=50))) <= 1.0 + 1e-12
