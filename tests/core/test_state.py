"""Tests of the prognostic state container."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import constants as c
from repro.core.grid import make_grid
from repro.core.reference import make_reference_state
from repro.core.state import State, state_from_reference, zeros_state
from repro.workloads.sounding import constant_stability_sounding


def test_zeros_state_shapes(small_grid):
    st = zeros_state(small_grid)
    assert st.rho.shape == small_grid.shape_c
    assert st.rhou.shape == small_grid.shape_u
    assert st.rhov.shape == small_grid.shape_v
    assert st.rhow.shape == small_grid.shape_w
    assert set(st.q) == set(c.WATER_SPECIES)
    assert st.time == 0.0


def test_copy_is_deep(small_state):
    cp = small_state.copy()
    cp.rho += 1.0
    cp.q["qv"] += 1.0
    assert not np.shares_memory(cp.rho, small_state.rho)
    assert np.all(small_state.q["qv"] == 0.0)
    # precip accumulator copies too
    small_state.precip_accum = np.ones((small_state.grid.nx, small_state.grid.ny))
    cp2 = small_state.copy()
    cp2.precip_accum += 1.0
    assert np.all(small_state.precip_accum == 1.0)


def test_get_set_roundtrip(small_state):
    arr = np.full_like(small_state.q["qc"], 3.0)
    small_state.set("qc", arr)
    assert small_state.get("qc") is arr
    arr2 = np.full_like(small_state.rhou, 2.0)
    small_state.set("rhou", arr2)
    assert small_state.get("rhou") is arr2


def test_prognostic_names(small_state):
    names = small_state.prognostic_names()
    assert names[:5] == ["rho", "rhou", "rhov", "rhow", "rhotheta"]
    assert "qv" in names and "qh" in names


def test_velocities_uniform(small_state):
    u, v, w = small_state.velocities()
    g = small_state.grid
    np.testing.assert_allclose(u[g.isl_u], 10.0, rtol=1e-12)
    np.testing.assert_allclose(v[g.isl_v], 0.0, atol=1e-15)
    np.testing.assert_allclose(w[g.isl], 0.0, atol=1e-15)


def test_theta_and_pressure_of_reference(small_grid):
    ref = make_reference_state(small_grid, constant_stability_sounding())
    st = state_from_reference(small_grid, ref)
    np.testing.assert_allclose(st.theta_m(), ref.theta_c, rtol=1e-12)
    np.testing.assert_allclose(st.pressure(), ref.p_c, rtol=1e-10)


def test_total_mass_matches_analytic(small_grid):
    """A uniform G-weighted density integrates to rho0 * dx * dy * ztop
    per column (flat grid)."""
    st = zeros_state(small_grid)
    st.rho[...] = 1.2
    expected = 1.2 * small_grid.nx * small_grid.ny * small_grid.dx \
        * small_grid.dy * small_grid.ztop
    assert st.total_mass() == pytest.approx(expected)


def test_total_water_mass(small_state):
    g = small_state.grid
    small_state.q["qv"][...] = 1.0
    small_state.q["qr"][...] = 0.5
    expected = 1.5 * g.nx * g.ny * g.dx * g.dy * g.ztop
    assert small_state.total_water_mass() == pytest.approx(expected)


def test_mixing_ratio(small_state):
    small_state.q["qv"][...] = 0.01 * small_state.rho
    np.testing.assert_allclose(small_state.mixing_ratio("qv"), 0.01)


def test_validate_catches_bad_values(small_state):
    small_state.validate()  # fine as-is
    g = small_state.grid
    bad = small_state.copy()
    bad.rho[g.halo + 1, g.halo + 1, 0] = -1.0
    with pytest.raises(FloatingPointError, match="density"):
        bad.validate()
    bad2 = small_state.copy()
    bad2.q["qv"][g.halo, g.halo, 0] = np.inf
    with pytest.raises(FloatingPointError, match="qv"):
        bad2.validate()
    # garbage in the halo is allowed (it is refreshed before use)
    ok = small_state.copy()
    ok.rhotheta[0, 0, 0] = np.nan
    ok.validate()


@settings(max_examples=15, deadline=None)
@given(u0=st.floats(-50, 50), v0=st.floats(-50, 50))
def test_state_from_reference_wind(u0, v0):
    g = make_grid(6, 6, 4, 1000.0, 1000.0, 4000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    s = state_from_reference(g, ref, u0=u0, v0=v0)
    u, v, w = s.velocities()
    np.testing.assert_allclose(u[g.isl_u], u0, rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(v[g.isl_v], v0, rtol=1e-10, atol=1e-12)
