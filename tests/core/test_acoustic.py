"""Tests of the acoustic stepper mechanics and invariants."""
import numpy as np
import pytest

from repro.core.acoustic import (
    ACOUSTIC_FIELDS,
    AcousticStepper,
    acoustic_integrate,
    build_context,
)
from repro.core.boundary import fill_halos_state
from repro.core.grid import make_grid
from repro.core.model import AsucaModel, ModelConfig
from repro.core.pressure import eos_pressure
from repro.core.reference import make_reference_state
from repro.core.rk3 import DynamicsConfig, slow_tendencies
from repro.core.limiter import koren
from repro.core.state import state_from_reference
from repro.workloads.sounding import constant_stability_sounding


@pytest.fixture
def setup():
    g = make_grid(12, 8, 10, 2000.0, 2000.0, 10000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    st = state_from_reference(g, ref, u0=10.0)
    X = g.x_c()[:, None, None]
    st.rhotheta += st.rho * 0.5 * np.exp(-(((X - 12000.0) / 3000.0) ** 2))
    fill_halos_state(st)
    rhotheta_ref_hat = ref.rhotheta_c * g.jac[:, :, None]
    p_ref = eos_pressure(rhotheta_ref_hat, g)
    ctx = build_context(st, ref, p_ref)
    cfg = DynamicsConfig(dt=4.0, ns=4)
    forcing, q_tend = slow_tendencies(st, ref, cfg, koren)
    return g, ref, st, ctx, forcing, q_tend


def _exchange(state, names):
    fill_halos_state(state, names)


def test_stepper_counts_substeps(setup):
    g, ref, st, ctx, forcing, _ = setup
    stepper = AcousticStepper(st, forcing, ctx, ref, 2.0, 4)
    for _ in range(4):
        fields = stepper.substep()
        assert fields == ACOUSTIC_FIELDS
        _exchange(stepper.st, fields)
    with pytest.raises(RuntimeError, match="already taken"):
        stepper.substep()


def test_finish_requires_all_substeps(setup):
    g, ref, st, ctx, forcing, q_tend = setup
    stepper = AcousticStepper(st, forcing, ctx, ref, 2.0, 4)
    stepper.substep()
    with pytest.raises(RuntimeError, match="finish"):
        stepper.finish(q_tend)


def test_integrate_equals_manual_drive(setup):
    """acoustic_integrate is exactly the stepper + exchanges."""
    g, ref, st, ctx, forcing, q_tend = setup
    auto = acoustic_integrate(st, forcing, ctx, ref, 2.0, 4,
                              exchange=_exchange, q_tendencies=q_tend)
    stepper = AcousticStepper(st, forcing, ctx, ref, 2.0, 4)
    for _ in range(4):
        _exchange(stepper.st, stepper.substep())
    q_fields = stepper.finish(q_tend)
    _exchange(stepper.st, q_fields)
    for name in auto.prognostic_names():
        np.testing.assert_array_equal(auto.get(name), stepper.st.get(name),
                                      err_msg=name)


def test_does_not_mutate_base(setup):
    g, ref, st, ctx, forcing, q_tend = setup
    before = {n: st.get(n).copy() for n in st.prognostic_names()}
    acoustic_integrate(st, forcing, ctx, ref, 2.0, 4,
                       exchange=_exchange, q_tendencies=q_tend)
    for name, arr in before.items():
        np.testing.assert_array_equal(st.get(name), arr, err_msg=name)


def test_time_advances(setup):
    g, ref, st, ctx, forcing, _ = setup
    out = acoustic_integrate(st, forcing, ctx, ref, 2.0, 4, exchange=_exchange)
    assert out.time == pytest.approx(st.time + 2.0)


def test_more_substeps_converge(setup):
    """Halving dtau changes the result by less than dtau itself changes
    things — a weak consistency/stability check of the substepping."""
    g, ref, st, ctx, forcing, _ = setup
    coarse = acoustic_integrate(st, forcing, ctx, ref, 2.0, 2, exchange=_exchange)
    fine = acoustic_integrate(st, forcing, ctx, ref, 2.0, 8, exchange=_exchange)
    d_cf = np.abs(g.interior(coarse.rhotheta) - g.interior(fine.rhotheta)).max()
    d_total = np.abs(g.interior(fine.rhotheta) - g.interior(st.rhotheta)).max()
    assert d_cf < 0.5 * d_total


def test_w_boundary_faces_stay_zero(setup):
    g, ref, st, ctx, forcing, _ = setup
    out = acoustic_integrate(st, forcing, ctx, ref, 2.0, 4, exchange=_exchange)
    assert np.all(out.rhow[:, :, 0] == 0.0)
    assert np.all(out.rhow[:, :, -1] == 0.0)


def test_beta_one_fully_implicit(setup):
    """beta = 1 must run (skips the trapezoidal correction branch) and
    damp the vertical motion at least as strongly as beta = 0.55."""
    g, ref, st, ctx, forcing, _ = setup
    out_55 = acoustic_integrate(st, forcing, ctx, ref, 2.0, 4,
                                beta=0.55, exchange=_exchange)
    out_10 = acoustic_integrate(st, forcing, ctx, ref, 2.0, 4,
                                beta=1.0, exchange=_exchange)
    w55 = np.abs(g.interior(out_55.rhow)).max()
    w10 = np.abs(g.interior(out_10.rhow)).max()
    assert w10 <= w55 * 1.05


def test_divergence_damping_reduces_pressure_noise(setup):
    """With damping on, the max perturbation pressure after the substeps
    is no larger than without."""
    g, ref, st, ctx, forcing, _ = setup
    out_d = acoustic_integrate(st, forcing, ctx, ref, 2.0, 8,
                               div_damp=0.2, exchange=_exchange)
    out_n = acoustic_integrate(st, forcing, ctx, ref, 2.0, 8,
                               div_damp=0.0, exchange=_exchange)
    # both stable; damped run has no larger acoustic amplitude
    for out in (out_d, out_n):
        assert np.all(np.isfinite(g.interior(out.rhotheta)))
    amp_d = np.abs(g.interior(out_d.rho) - g.interior(st.rho)).max()
    amp_n = np.abs(g.interior(out_n.rho) - g.interior(st.rho)).max()
    assert amp_d <= amp_n * 1.10
