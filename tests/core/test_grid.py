"""Tests for the staggered terrain-following grid."""
import numpy as np
import pytest

from repro.core.grid import Grid, make_grid, bell_mountain


def test_shapes_flat(small_grid):
    g = small_grid
    nxh, nyh = g.nx + 2 * g.halo, g.ny + 2 * g.halo
    assert g.shape_c == (nxh, nyh, g.nz)
    assert g.shape_u == (nxh + 1, nyh, g.nz)
    assert g.shape_v == (nxh, nyh + 1, g.nz)
    assert g.shape_w == (nxh, nyh, g.nz + 1)
    assert g.zeros_c().shape == g.shape_c
    assert g.halo >= 3  # bit-equivalence of decomposed runs needs >= 3


def test_interior_slicing(small_grid):
    g = small_grid
    arr = g.zeros_c()
    assert g.interior(arr).shape == (g.nx, g.ny, g.nz)
    # interior view writes through
    g.interior(arr)[...] = 3.0
    assert arr[g.halo, g.halo, 0] == 3.0
    assert arr[0, 0, 0] == 0.0


def test_flat_grid_metrics(small_grid):
    g = small_grid
    assert g.is_flat()
    assert np.all(g.jac == 1.0)
    assert np.all(g.dzsdx_u == 0.0)
    assert np.all(g.dzsdy_v == 0.0)
    assert np.all(g.dzdx_at_u() == 0.0)


def test_vertical_structure(small_grid):
    g = small_grid
    assert g.z_f[0] == 0.0
    assert g.z_f[-1] == pytest.approx(g.ztop)
    assert np.allclose(np.diff(g.z_f), g.dz_c)
    assert np.all(g.dz_f > 0)
    # centers between faces
    assert np.all(g.z_c > g.z_f[:-1]) and np.all(g.z_c < g.z_f[1:])


def test_stretched_levels():
    zf = np.concatenate([[0.0], np.cumsum(np.linspace(100, 500, 8))])
    g = make_grid(6, 6, 8, 500.0, 500.0, ztop=float(zf[-1]), z_faces=zf)
    assert np.allclose(g.z_f, zf)
    assert np.all(np.diff(g.dz_c) > 0)


def test_terrain_grid_geometry(terrain_grid):
    g = terrain_grid
    assert not g.is_flat()
    assert np.all(g.jac > 0) and np.all(g.jac <= 1.0)
    # physical heights: surface at zs, top at ztop everywhere
    z3f = g.z3d_f()
    assert np.allclose(z3f[:, :, 0], g.zs)
    assert np.allclose(z3f[:, :, -1], g.ztop)
    # columns strictly increasing
    assert np.all(np.diff(z3f, axis=2) > 0)


def test_terrain_periodic_consistency(terrain_grid):
    g = terrain_grid
    h, nx = g.halo, g.nx
    # halo terrain equals the periodic image
    np.testing.assert_allclose(g.zs[:h], g.zs[nx : nx + h])
    np.testing.assert_allclose(g.zs[nx + h :], g.zs[h : 2 * h])


def test_bell_mountain_peak():
    terr = bell_mountain(height=500.0, half_width=2000.0, x0=0.0)
    X = np.array([[0.0, 2000.0]])
    Y = np.zeros_like(X)
    zs = terr(X, Y)
    assert zs[0, 0] == pytest.approx(500.0)
    assert zs[0, 1] == pytest.approx(250.0)  # half height at half_width


def test_validation_errors():
    with pytest.raises(ValueError):
        make_grid(4, 4, 1, 100.0, 100.0, 1000.0)  # nz too small
    with pytest.raises(ValueError):
        make_grid(4, 4, 4, 100.0, 100.0, 1000.0, halo=1)
    with pytest.raises(ValueError):
        make_grid(4, 4, 4, 100.0, 100.0, 1000.0,
                  terrain=lambda X, Y: np.full_like(X, 900.0))  # too tall
    with pytest.raises(ValueError):
        bad = np.linspace(100.0, 1000.0, 5)  # doesn't start at zero
        make_grid(4, 4, 4, 100.0, 100.0, 1000.0, z_faces=bad)


def test_coordinates(small_grid):
    g = small_grid
    xc = g.x_c()
    assert xc[g.halo] == pytest.approx(0.5 * g.dx)
    xu = g.x_u()
    assert xu[g.halo] == pytest.approx(0.0)
    assert xu[g.halo + g.nx] == pytest.approx(g.nx * g.dx)


def test_field_bytes(small_grid):
    g = small_grid
    assert g.field_bytes(np.float32) == g.nx * g.ny * g.nz * 4
    assert g.field_bytes(np.float64) == 2 * g.field_bytes(np.float32)


def test_stretched_levels_helper():
    from repro.core.grid import stretched_levels

    zf = stretched_levels(10, 50.0, 1.2)
    assert zf.shape == (11,)
    assert zf[0] == 0.0
    dz = np.diff(zf)
    assert dz[0] == pytest.approx(50.0)
    np.testing.assert_allclose(dz[1:] / dz[:-1], 1.2)
    # usable by make_grid
    g = make_grid(6, 6, 10, 500.0, 500.0, float(zf[-1]), z_faces=zf)
    assert g.dz_c[0] == pytest.approx(50.0)
    with pytest.raises(ValueError):
        stretched_levels(0, 50.0, 1.2)
    with pytest.raises(ValueError):
        stretched_levels(5, 50.0, 0.9)
