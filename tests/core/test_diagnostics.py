"""Tests of the CFL/energy/imbalance diagnostics."""
import numpy as np
import pytest

from repro.core.diagnostics import (
    cfl_report,
    energy_budget,
    hydrostatic_imbalance,
    suggest_ns,
)
from repro.core.grid import make_grid
from repro.core.model import AsucaModel, ModelConfig
from repro.core.reference import make_reference_state
from repro.core.rk3 import DynamicsConfig
from repro.core.state import state_from_reference
from repro.workloads.mountain_wave import make_mountain_wave_case
from repro.workloads.sounding import constant_stability_sounding


@pytest.fixture
def balanced():
    g = make_grid(12, 8, 10, 2000.0, 2000.0, 10000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    st = state_from_reference(g, ref, u0=10.0)
    return g, ref, st


def test_cfl_advective(balanced):
    g, ref, st = balanced
    rep = cfl_report(st, dt=10.0, ns=5)
    # |u| = 10, dt = 10, dx = 2000 -> 0.05
    assert rep.advective_x == pytest.approx(0.05, rel=1e-6)
    assert rep.advective_y == pytest.approx(0.0, abs=1e-12)
    assert rep.advective_z == pytest.approx(0.0, abs=1e-12)
    assert rep.dtau == 2.0


def test_cfl_acoustic_he_vi_argument(balanced):
    """The paper's reason for HE-VI: the explicit vertical acoustic CFL
    would be much larger than the horizontal one (dz << dx)."""
    g, ref, st = balanced
    rep = cfl_report(st, dt=4.0, ns=8)
    assert rep.acoustic_vertical_explicit > rep.acoustic_horizontal
    # horizontal acoustic CFL ~ cs * 0.5 * sqrt(2)/2000 ~ 0.12
    assert 0.05 < rep.acoustic_horizontal < 0.3
    assert rep.stable


def test_cfl_unstable_detected(balanced):
    g, ref, st = balanced
    rep = cfl_report(st, dt=400.0, ns=2)
    assert not rep.stable


def test_suggest_ns(balanced):
    g, _, _ = balanced
    ns = suggest_ns(g, dt=4.0)
    assert ns % 2 == 0
    rep_dtau = 4.0 / ns
    assert 350.0 * rep_dtau * np.hypot(1 / g.dx, 1 / g.dy) <= 0.5 + 1e-9
    # a finer grid demands more substeps
    g_fine = make_grid(12, 8, 10, 500.0, 500.0, 10000.0)
    assert suggest_ns(g_fine, dt=4.0) > ns


def test_energy_budget_positive_and_dominated_by_internal(balanced):
    g, ref, st = balanced
    e = energy_budget(st)
    assert e.kinetic > 0 and e.internal > 0 and e.potential > 0
    assert e.internal > e.potential > e.kinetic
    assert e.total == pytest.approx(e.kinetic + e.internal + e.potential)


def test_energy_drift_bounded_over_run():
    case = make_mountain_wave_case(nx=16, ny=8, nz=12, dx=2000.0,
                                   ztop=12000.0, dt=4.0)
    e0 = energy_budget(case.state)
    case.run(25)
    e1 = energy_budget(case.state)
    assert abs(e1.total - e0.total) / e0.total < 1e-3


def test_hydrostatic_imbalance_zero_when_balanced(balanced):
    g, ref, st = balanced
    model = AsucaModel(g, ref, ModelConfig(dynamics=DynamicsConfig(dt=4.0, ns=4)))
    rho_ref_hat = ref.rho_c * g.jac[:, :, None]
    resid = hydrostatic_imbalance(st, model.p_ref, rho_ref_hat)
    assert resid < 1e-10


def test_hydrostatic_imbalance_detects_anomaly(balanced):
    g, ref, st = balanced
    model = AsucaModel(g, ref, ModelConfig(dynamics=DynamicsConfig(dt=4.0, ns=4)))
    rho_ref_hat = ref.rho_c * g.jac[:, :, None]
    st.rhotheta *= 1.01  # warm the whole column: buoyant imbalance
    resid = hydrostatic_imbalance(st, model.p_ref, rho_ref_hat)
    assert resid > 1e-3
