"""Property-based tests of the flux limiters (TVD bounds, consistency)."""
import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import limiter as lim

TVD = ["koren", "minmod", "van_leer", "superbee"]
ALL = list(lim.LIMITERS)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_subnormal=False)


@pytest.mark.parametrize("name", TVD)
@given(g1=finite, g2=finite)
def test_tvd_bounds(name, g1, g2):
    """Unnormalized TVD bound: |psi(r) g1| <= 2 min(|g1|, |g2|) and the
    result never has the opposite sign of g1 (psi >= 0)."""
    f = lim.LIMITERS[name]
    out = float(f(np.float64(g1), np.float64(g2)))
    bound = 2.0 * min(abs(g1), abs(g2)) + 1e-9 * max(abs(g1), abs(g2), 1.0)
    assert abs(out) <= bound
    assert out * g1 >= -1e-12 * abs(out * g1 + 1.0)


@pytest.mark.parametrize("name", TVD)
@given(g1=finite, g2=finite)
def test_zero_at_extrema(name, g1, g2):
    """Opposite-sign gradients (a local extremum) give zero correction."""
    f = lim.LIMITERS[name]
    if np.sign(g1) * np.sign(g2) <= 0.0:  # includes either gradient == 0
        assert float(f(np.float64(g1), np.float64(g2))) == 0.0


@pytest.mark.parametrize("name", ["koren", "minmod", "van_leer"])
@given(g=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
def test_smooth_consistency(name, g):
    """psi(1) = 1: equal gradients pass through unchanged (2nd order)."""
    f = lim.LIMITERS[name]
    out = float(f(np.float64(g), np.float64(g)))
    assert out == pytest.approx(g, rel=1e-12)
    out = float(f(np.float64(-g), np.float64(-g)))
    assert out == pytest.approx(-g, rel=1e-12)


@pytest.mark.parametrize("name", ALL)
@given(g1=finite, g2=finite,
       a=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False))
def test_scale_invariance(name, g1, g2, a):
    """limited(a g1, a g2) == a limited(g1, g2) for a > 0."""
    f = lim.LIMITERS[name]
    lhs = float(f(np.float64(a * g1), np.float64(a * g2)))
    rhs = a * float(f(np.float64(g1), np.float64(g2)))
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9 * max(abs(rhs), 1.0))


def test_koren_third_order_region():
    """In the smooth monotone region Koren returns (g1 + 2 g2)/3 — the
    kappa=1/3 scheme (3rd-order face reconstruction)."""
    g1, g2 = np.float64(1.0), np.float64(1.2)
    assert float(lim.koren(g1, g2)) == pytest.approx((1.0 + 2.4) / 3.0)
    # matches the unlimited scheme there
    assert float(lim.koren(g1, g2)) == pytest.approx(
        float(lim.unlimited_k13(g1, g2)))


def test_koren_clipping():
    # steep downwind gradient: clipped at 2*g1
    assert float(lim.koren(np.float64(1.0), np.float64(100.0))) == 2.0
    # steep upwind gradient: clipped at 2*g2
    assert float(lim.koren(np.float64(100.0), np.float64(1.0))) == 2.0


def test_upwind1_is_zero():
    g = np.linspace(-5, 5, 11)
    assert np.all(lim.upwind1(g, g[::-1]) == 0.0)


def test_get_limiter():
    assert lim.get_limiter("koren") is lim.koren
    with pytest.raises(ValueError):
        lim.get_limiter("nope")


def test_vectorized_shapes():
    g1 = np.random.default_rng(1).normal(size=(4, 5, 6))
    g2 = np.random.default_rng(2).normal(size=(4, 5, 6))
    for name in ALL:
        out = lim.LIMITERS[name](g1, g2)
        assert out.shape == (4, 5, 6)
        assert np.all(np.isfinite(out))
