"""Tests of the extended diffusion operators and their model wiring."""
import numpy as np
import pytest

from repro.core import (
    AsucaModel,
    DynamicsConfig,
    ModelConfig,
    make_grid,
    make_reference_state,
)
from repro.core.boundary import fill_halo_x, fill_halo_y
from repro.core.diffusion import (
    hyperdiffusion_c,
    surface_drag_tendency,
    vertical_diffusion_c,
)
from repro.workloads.sounding import constant_stability_sounding


def _fill(arr, g):
    fill_halo_x(arr, g, False)
    fill_halo_y(arr, g, False)


def test_hyperdiffusion_kills_checkerboard(small_grid):
    """2-dx noise is damped much harder than a long wave (4th order is
    scale selective)."""
    g = small_grid
    x = np.arange(g.nxh)
    checker = ((-1.0) ** x)[:, None, None] * np.ones(g.shape_c)
    _fill(checker, g)
    wave = np.sin(2 * np.pi * g.x_c() / (g.nx * g.dx))[:, None, None] * np.ones(g.shape_c)
    _fill(wave, g)
    d_checker = hyperdiffusion_c(checker, g)
    d_wave = hyperdiffusion_c(wave, g)
    # tendency opposes the checkerboard
    assert np.all(g.interior(d_checker) * g.interior(checker) < 0)
    ratio = np.abs(g.interior(d_checker)).max() / max(
        np.abs(g.interior(d_wave)).max(), 1e-30
    )
    assert ratio > 50.0


def test_hyperdiffusion_constant_field_zero(small_grid):
    g = small_grid
    phi = np.full(g.shape_c, 5.0)
    np.testing.assert_allclose(g.interior(hyperdiffusion_c(phi, g)), 0.0)


def test_vertical_diffusion_conserves_column(small_grid):
    """Zero-flux boundaries: the column integral of rho*phi ... here the
    operator acts on a specific quantity with dz weights, so the
    dz-weighted column sum of the tendency vanishes."""
    g = small_grid
    r = np.random.default_rng(0)
    phi = r.normal(size=g.shape_c)
    tend = vertical_diffusion_c(phi, g, kv=10.0)
    colsum = (tend * g.dz_c[None, None, :]).sum(axis=2)
    np.testing.assert_allclose(colsum, 0.0, atol=1e-12)


def test_vertical_diffusion_smooths(small_grid):
    g = small_grid
    phi = np.zeros(g.shape_c)
    phi[:, :, 3] = 1.0
    tend = vertical_diffusion_c(phi, g, kv=5.0)
    assert np.all(tend[:, :, 3] < 0)       # spike decays
    assert np.all(tend[:, :, 2] > 0)       # neighbors gain
    assert np.all(tend[:, :, 4] > 0)


def test_vertical_diffusion_profile_coefficient(small_grid):
    g = small_grid
    phi = np.random.default_rng(1).normal(size=g.shape_c)
    kv = np.zeros(g.nz + 1)  # all faces off -> no tendency
    np.testing.assert_allclose(vertical_diffusion_c(phi, g, kv), 0.0)


def test_surface_drag_direction(small_grid):
    g = small_grid
    rhou = np.full(g.shape_u, 10.0)
    rhov = np.full(g.shape_v, -5.0)
    du, dv = surface_drag_tendency(rhou, rhov, g, cd=1e-3)
    assert np.all(du[1:-1, :, 0] < 0)      # opposes +u
    assert np.all(dv[:, 1:-1, 0] > 0)      # opposes -v
    assert np.all(du[:, :, 1:] == 0.0)     # surface level only


def test_surface_drag_off():
    from repro.core.grid import make_grid as mg

    g = mg(6, 6, 4, 500.0, 500.0, 2000.0)
    du, dv = surface_drag_tendency(np.ones(g.shape_u), np.ones(g.shape_v), g, 0.0)
    assert np.all(du == 0.0) and np.all(dv == 0.0)


def test_drag_decelerates_model_wind():
    g = make_grid(12, 8, 8, 2000.0, 2000.0, 8000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    m = AsucaModel(g, ref, ModelConfig(dynamics=DynamicsConfig(
        dt=4.0, ns=4, drag_cd=5e-3)))
    st = m.initial_state(u0=10.0)
    for _ in range(10):
        st = m.step(st)
    u, _, _ = st.velocities()
    assert float(u[g.isl_u][:, :, 0].mean()) < 10.0     # slowed at surface
    assert float(u[g.isl_u][:, :, -1].mean()) == pytest.approx(10.0, abs=0.2)


def test_hyperdiffusion_in_model_damps_noise():
    g = make_grid(16, 8, 8, 2000.0, 2000.0, 8000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    noisy_cfg = ModelConfig(dynamics=DynamicsConfig(dt=4.0, ns=4))
    filt_cfg = ModelConfig(dynamics=DynamicsConfig(dt=4.0, ns=4,
                                                   kdiff4_h=2.0e9))
    results = {}
    for label, cfg in (("plain", noisy_cfg), ("filtered", filt_cfg)):
        m = AsucaModel(g, ref, cfg)
        st = m.initial_state()
        r = np.random.default_rng(3)
        st.rhotheta += st.rho * 0.5 * r.normal(size=g.shape_c)
        m._exchange(st, None)
        for _ in range(5):
            st = m.step(st)
        pert = g.interior(st.rhotheta / st.rho)
        results[label] = float((pert - pert.mean()).var())
    assert results["filtered"] < results["plain"]
