"""Tests of the hydrostatic reference state."""
import numpy as np
import pytest

from repro import constants as c
from repro.core.grid import make_grid
from repro.core.reference import hydrostatic_exner, make_reference_state
from repro.workloads.sounding import (
    constant_stability_sounding,
    isentropic_sounding,
    isothermal_sounding,
    tropospheric_sounding,
)


def test_exner_surface_value():
    z, pi = hydrostatic_exner(isentropic_sounding(300.0), 5000.0)
    assert pi[0] == pytest.approx(1.0)
    assert np.all(np.diff(pi) < 0)  # decreases with height


def test_exner_isentropic_analytic():
    """For constant theta the Exner function is linear:
    pi = 1 - g z / (cp theta0)."""
    theta0 = 300.0
    z, pi = hydrostatic_exner(isentropic_sounding(theta0), 8000.0)
    np.testing.assert_allclose(pi, 1.0 - c.G * z / (c.CP * theta0), rtol=1e-10)


def test_exner_nonstandard_surface_pressure():
    z, pi = hydrostatic_exner(isentropic_sounding(), 2000.0, p_surface=9.0e4)
    assert pi[0] == pytest.approx((0.9) ** c.KAPPA)


def test_reference_state_flat(small_grid):
    ref = make_reference_state(small_grid, constant_stability_sounding())
    assert ref.theta_c.shape == small_grid.shape_c
    assert ref.rho_wf.shape == small_grid.shape_w
    # density decreases with height, positive everywhere
    assert np.all(ref.rho_c > 0)
    assert np.all(np.diff(ref.rho_c, axis=2) < 0)
    # flat grid: columns identical
    np.testing.assert_allclose(
        ref.p_c, np.broadcast_to(ref.p_c[:1, :1, :], ref.p_c.shape)
    )


def test_reference_state_ideal_gas_consistency(small_grid):
    ref = make_reference_state(small_grid, tropospheric_sounding())
    T = ref.theta_c * ref.pi_c
    np.testing.assert_allclose(ref.p_c, ref.rho_c * c.RD * T, rtol=1e-12)


def test_reference_hydrostatic_balance_discrete(small_grid):
    """dp/dz between cell centers matches -rho g at the face within the
    interpolation error of the fine integration grid."""
    ref = make_reference_state(small_grid, constant_stability_sounding())
    g = small_grid
    dp = np.diff(ref.p_c, axis=2)
    dz = (g.z_c[1:] - g.z_c[:-1])[None, None, :]
    rho_face = ref.rho_wf[:, :, 1:-1]
    np.testing.assert_allclose(dp / dz, -rho_face * c.G, rtol=2e-3)


def test_reference_terrain_follows_height(terrain_grid):
    """Over the mountain, surface pressure at the lowest cell is lower than
    over the plain (same x3 level, higher physical z)."""
    ref = make_reference_state(terrain_grid, constant_stability_sounding())
    zs = terrain_grid.zs
    peak = np.unravel_index(np.argmax(zs), zs.shape)
    plain = np.unravel_index(np.argmin(zs), zs.shape)
    assert ref.p_c[peak[0], peak[1], 0] < ref.p_c[plain[0], plain[1], 0]


def test_sounding_validation():
    with pytest.raises(ValueError):
        hydrostatic_exner(lambda z: np.full_like(np.asarray(z, float), -5.0), 1000.0)
    with pytest.raises(ValueError):
        # isothermal cold atmosphere can't be integrated to absurd height
        hydrostatic_exner(isentropic_sounding(100.0), 60000.0)
