"""Integration tests of the full dycore driver (AsucaModel)."""
import numpy as np
import pytest

from repro.core import (
    AsucaModel,
    DynamicsConfig,
    ModelConfig,
    bell_mountain,
    make_grid,
    make_reference_state,
)
from repro.workloads.sounding import (
    constant_stability_sounding,
    isentropic_sounding,
    tropospheric_sounding,
)


def _model(nx=16, ny=8, nz=12, dx=2000.0, ztop=12000.0, terrain=None,
           sounding=None, **dyn_kwargs):
    g = make_grid(nx=nx, ny=ny, nz=nz, dx=dx, dy=dx, ztop=ztop, terrain=terrain)
    ref = make_reference_state(g, sounding or constant_stability_sounding())
    cfg = ModelConfig(dynamics=DynamicsConfig(dt=4.0, ns=6, **dyn_kwargs))
    return AsucaModel(g, ref, cfg)


def test_balanced_state_is_stationary():
    """A hydrostatically balanced resting/uniform-wind atmosphere must not
    move: the discrete reference subtraction makes this exact."""
    m = _model()
    st = m.initial_state(u0=10.0)
    d0 = m.diagnostics(st)
    for _ in range(5):
        st = m.step(st)
    d = m.diagnostics(st)
    assert d.max_w == 0.0
    assert d.max_wind == pytest.approx(d0.max_wind)
    assert d.total_mass == pytest.approx(d0.total_mass, rel=1e-14)
    assert d.min_theta == pytest.approx(d0.min_theta)


def test_mass_conservation_with_motion():
    """Mass is conserved to the round-off of the update arithmetic even
    with an active mountain wave.  The scheme is exactly conservative in
    exact arithmetic; in floats each cell update rounds at eps*rho, so the
    total drifts as a random walk of ~1e-10 relative per step — we assert
    an order of magnitude above that, far below any physical leak."""
    terr = bell_mountain(height=300.0, half_width=4000.0, x0=16000.0)
    m = _model(terrain=terr, rayleigh_depth=4000.0, rayleigh_tau=30.0)
    st = m.initial_state(u0=10.0)
    m0 = st.total_mass()
    for _ in range(10):
        st = m.step(st)
    assert st.total_mass() == pytest.approx(m0, rel=1e-8)
    assert m.diagnostics(st).max_w > 1e-3  # the wave actually developed


def test_mountain_wave_stability_and_amplitude():
    """60 steps over a 300 m bell mountain: stable, w bounded and of the
    right linear-theory magnitude (~U h/a)."""
    terr = bell_mountain(height=300.0, half_width=4000.0, x0=32000.0)
    m = _model(nx=32, rayleigh_depth=4000.0, rayleigh_tau=30.0, terrain=terr,
               nz=16, ztop=16000.0)
    st = m.initial_state(u0=10.0)
    for _ in range(60):
        st = m.step(st)
    d = m.diagnostics(st)
    expected = 10.0 * 300.0 / 4000.0  # U h / a = 0.75 m/s
    assert 0.05 * expected < d.max_w < 4.0 * expected
    assert d.max_wind < 20.0  # no runaway


def test_buoyant_bubble_rises():
    """A warm bubble produces positive w at its location within minutes."""
    m = _model(nx=20, ny=20, nz=16, dx=1000.0, ztop=8000.0,
               sounding=tropospheric_sounding())
    st = m.initial_state()
    g = m.grid
    X, Y = np.meshgrid(g.x_c(), g.y_c(), indexing="ij")
    z3 = g.z3d_c()
    r2 = (
        ((X[:, :, None] - 10000.0) / 2000.0) ** 2
        + ((Y[:, :, None] - 10000.0) / 2000.0) ** 2
        + ((z3 - 1500.0) / 1200.0) ** 2
    )
    st.rhotheta += st.rho * 2.0 * np.maximum(0.0, 1.0 - np.sqrt(r2))
    m._exchange(st, None)
    for _ in range(20):
        st = m.step(st)
    u, v, w = st.velocities()
    h = g.halo
    center_w = w[h + 10, h + 10, :]
    assert center_w.max() > 0.3  # rising core
    assert m.diagnostics(st).max_w < 20.0


def test_cold_bubble_sinks():
    m = _model(nx=20, ny=8, nz=16, dx=1000.0, ztop=8000.0)
    st = m.initial_state()
    g = m.grid
    z3 = g.z3d_c()
    X = g.x_c()[:, None, None]
    blob = np.exp(-(((X - 10000.0) / 2000.0) ** 2) - ((z3 - 3000.0) / 1000.0) ** 2)
    st.rhotheta -= st.rho * 2.0 * blob
    m._exchange(st, None)
    for _ in range(15):
        st = m.step(st)
    _, _, w = st.velocities()
    assert w.min() < -0.3  # sinking core
    assert w.min() > -30.0


def test_uniform_theta_stays_uniform():
    """The acoustic/slow splitting of the theta equation is consistent
    with continuity: a uniform-theta atmosphere keeps theta uniform to
    round-off even while sound/gravity modes are active."""
    m = _model(sounding=isentropic_sounding(300.0))
    st = m.initial_state(u0=5.0)
    # kick it with a pressure (density) perturbation
    g = m.grid
    X = g.x_c()[:, None, None]
    st.rho *= 1.0 + 0.001 * np.exp(-(((X - 16000.0) / 3000.0) ** 2))
    st.rhotheta = st.rho * 300.0
    m._exchange(st, None)
    for _ in range(5):
        st = m.step(st)
    theta = st.rhotheta / st.rho
    np.testing.assert_allclose(g.interior(theta), 300.0, rtol=1e-10)


def test_acoustic_pulse_propagates():
    """A localized pressure perturbation spreads: the pressure extremum at
    the source column decays while the far field is perturbed."""
    m = _model(nx=32, ny=6, nz=10, dx=1000.0, ztop=10000.0)
    st = m.initial_state()
    g = m.grid
    h = g.halo
    X = g.x_c()[:, None, None]
    st.rhotheta *= 1.0 + 2e-4 * np.exp(-(((X - 16000.0) / 1500.0) ** 2))
    m._exchange(st, None)
    pp0 = np.abs(m.pressure_perturbation(st)[h + 16, h + 3, :]).max()
    far0 = np.abs(m.pressure_perturbation(st)[h + 28, h + 3, :]).max()
    # ~340 m/s: 12 km in ~35 s => 9 steps of 4 s
    for _ in range(9):
        st = m.step(st)
    pp1 = np.abs(m.pressure_perturbation(st)[h + 16, h + 3, :]).max()
    far1 = np.abs(m.pressure_perturbation(st)[h + 28, h + 3, :]).max()
    assert pp1 < 0.8 * pp0        # source decays
    assert far1 > 10.0 * max(far0, 1e-30)  # far field reached


def test_float32_runs_stably():
    m = _model()
    st = m.initial_state(u0=10.0, dtype=np.float32)
    g = m.grid
    X = g.x_c()[:, None, None].astype(np.float32)
    st.rhotheta += (st.rho * 0.5 * np.exp(-(((X - 16000.0) / 3000.0) ** 2))).astype(np.float32)
    m._exchange(st, None)
    for _ in range(10):
        st = m.step(st)
    assert st.rho.dtype == np.float32
    d = m.diagnostics(st)
    assert np.isfinite(d.max_w) and d.max_w < 10.0


def test_check_finite_catches_blowup():
    m = _model()
    st = m.initial_state()
    st.rhotheta[m.grid.halo + 2, m.grid.halo + 2, 3] = np.nan
    with pytest.raises(FloatingPointError):
        m.step(st)


def test_run_with_callback():
    m = _model()
    st = m.initial_state()
    seen = []
    m.run(st, 3, callback=lambda i, s: seen.append((i, s.time)))
    assert [i for i, _ in seen] == [0, 1, 2]
    assert seen[-1][1] == pytest.approx(3 * m.config.dynamics.dt)


def test_coriolis_turns_the_wind():
    """Pure inertial oscillation: with f > 0 an initial +x wind rotates
    toward -y (Northern hemisphere)."""
    m = _model(coriolis_f=1e-4)
    st = m.initial_state(u0=10.0)
    for _ in range(10):
        st = m.step(st)
    u, v, w = st.velocities()
    g = m.grid
    v_mean = float(v[g.isl_v].mean())
    assert v_mean < -0.02  # f u dt * 10 steps ~ -0.4 m/s
    u_mean = float(u[g.isl_u].mean())
    assert u_mean < 10.0
    # speed approximately conserved
    assert np.hypot(u_mean, v_mean) == pytest.approx(10.0, rel=0.02)
