"""Batched Thomas solver vs. scipy and analytic checks."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tridiag import thomas_solve, thomas_solve_scipy


def _dominant_system(rng, shape, n):
    sub = rng.uniform(-1, 1, size=shape + (n,))
    sup = rng.uniform(-1, 1, size=shape + (n,))
    diag = 2.5 + np.abs(sub) + np.abs(sup) + rng.uniform(0, 1, size=shape + (n,))
    rhs = rng.normal(size=shape + (n,))
    return sub, diag, sup, rhs


def test_matches_scipy():
    rng = np.random.default_rng(0)
    sub, diag, sup, rhs = _dominant_system(rng, (4, 3), 12)
    x = thomas_solve(sub, diag, sup, rhs)
    x_ref = thomas_solve_scipy(sub, diag, sup, rhs)
    np.testing.assert_allclose(x, x_ref, rtol=1e-12, atol=1e-12)


def test_identity():
    rhs = np.random.default_rng(1).normal(size=(5, 7))
    x = thomas_solve(np.zeros_like(rhs), np.ones_like(rhs), np.zeros_like(rhs), rhs)
    np.testing.assert_allclose(x, rhs)


def test_residual_zero():
    rng = np.random.default_rng(2)
    sub, diag, sup, rhs = _dominant_system(rng, (6,), 20)
    x = thomas_solve(sub, diag, sup, rhs)
    resid = diag * x
    resid[..., 1:] += sub[..., 1:] * x[..., :-1]
    resid[..., :-1] += sup[..., :-1] * x[..., 1:]
    np.testing.assert_allclose(resid, rhs, rtol=1e-10, atol=1e-10)


def test_known_solution_poisson():
    """-x_{k-1} + 2 x_k - x_{k+1} = h^2 f with Dirichlet zeros: compare to
    the analytic solution of u'' = -1 -> u = x(1-x)/2."""
    n = 101
    h = 1.0 / (n + 1)
    sub = -np.ones(n)
    sup = -np.ones(n)
    diag = 2.0 * np.ones(n)
    rhs = np.full(n, h * h)
    x = thomas_solve(sub, diag, sup, rhs)
    xs = np.linspace(h, 1.0 - h, n)
    np.testing.assert_allclose(x, xs * (1 - xs) / 2, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 40))
def test_property_random_dominant(seed, n):
    rng = np.random.default_rng(seed)
    sub, diag, sup, rhs = _dominant_system(rng, (3,), n)
    x = thomas_solve(sub, diag, sup, rhs)
    x_ref = thomas_solve_scipy(sub, diag, sup, rhs)
    np.testing.assert_allclose(x, x_ref, rtol=1e-9, atol=1e-9)


def test_batch_independence():
    """Solving a batch equals solving the columns independently."""
    rng = np.random.default_rng(3)
    sub, diag, sup, rhs = _dominant_system(rng, (8,), 15)
    x_all = thomas_solve(sub, diag, sup, rhs)
    for m in range(8):
        x1 = thomas_solve(sub[m], diag[m], sup[m], rhs[m])
        np.testing.assert_allclose(x_all[m], x1)
