"""Tests of the FVM limited advection operators."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import advection as adv
from repro.core.boundary import fill_halo_x, fill_halo_y
from repro.core.grid import make_grid
from repro.core.limiter import koren


def _fill_c(arr, g):
    fill_halo_x(arr, g, staggered=False)
    fill_halo_y(arr, g, staggered=False)


def _fill_u(arr, g):
    fill_halo_x(arr, g, staggered=True)
    fill_halo_y(arr, g, staggered=False)


def _fill_v(arr, g):
    fill_halo_x(arr, g, staggered=False)
    fill_halo_y(arr, g, staggered=True)


@pytest.fixture
def g():
    return make_grid(nx=16, ny=12, nz=10, dx=500.0, dy=500.0, ztop=5000.0)


def _random_fluxes(g, seed=3, amp=1.0):
    r = np.random.default_rng(seed)
    fx = r.normal(scale=amp, size=g.shape_u)
    fy = r.normal(scale=amp, size=g.shape_v)
    fz = r.normal(scale=amp, size=g.shape_w)
    fz[:, :, 0] = 0.0
    fz[:, :, -1] = 0.0
    _fill_u(fx, g)
    _fill_v(fy, g)
    _fill_c(fz, g)
    return fx, fy, fz


def test_uniform_scalar_reduces_to_mass_divergence(g):
    """For uniform phi the limited flux is exactly phi0 * F, so the
    advection tendency equals -phi0 * div(F)."""
    phi0 = 3.7
    phi = np.full(g.shape_c, phi0)
    fx, fy, fz = _random_fluxes(g)
    tend = adv.advect_scalar(phi, fx, fy, fz, g)
    divm = adv.mass_divergence(fx, fy, fz, g)
    np.testing.assert_allclose(
        g.interior(tend), -phi0 * g.interior(divm), rtol=1e-12, atol=1e-12
    )


def test_scalar_conservation_periodic(g):
    """Total scalar content change is zero under periodic halos and
    zero-flux vertical boundaries (exact FVM telescoping)."""
    r = np.random.default_rng(7)
    phi = r.uniform(0.5, 2.0, size=g.shape_c)
    _fill_c(phi, g)
    fx, fy, fz = _random_fluxes(g, seed=11)
    tend = adv.advect_scalar(phi, fx, fy, fz, g)
    total = (g.interior(tend) * g.dz_c[None, None, :]).sum() * g.dx * g.dy
    scale = np.abs(g.interior(tend)).max() * g.dx * g.dy * g.dz_c.max()
    assert abs(total) < 1e-9 * max(scale, 1.0) * g.n_interior_cells


def test_1d_translation_upwind_direction(g):
    """A blob in uniform +x mass flux moves right: the tendency is
    positive downstream of the maximum and negative upstream."""
    phi = np.zeros(g.shape_c)
    h = g.halo
    ic = h + g.nx // 2
    phi[ic, :, :] = 1.0
    _fill_c(phi, g)
    fx = np.ones(g.shape_u)
    fy = np.zeros(g.shape_v)
    fz = np.zeros(g.shape_w)
    tend = adv.advect_scalar(phi, fx, fy, fz, g)
    assert np.all(tend[ic + 1, g.isl[1], :] > 0)       # gains downstream
    assert np.all(tend[ic, g.isl[1], :] < 0)           # peak cell loses


def _revolution_error(nx: int, sigma_cells: float, dt: float = 0.25):
    """Advect a Gaussian once around a periodic domain with forward Euler;
    return (rms error, final field, initial field, peak retention)."""
    g = make_grid(nx=nx, ny=4, nz=4, dx=1.0, dy=1.0, ztop=4.0)
    x = g.x_c()
    phi = 1.0 + np.exp(
        -0.5 * ((x[:, None, None] - nx / 2) / sigma_cells) ** 2
    ) * np.ones(g.shape_c)
    _fill_c(phi, g)
    fx = np.ones(g.shape_u)
    fy = np.zeros(g.shape_v)
    fz = np.zeros(g.shape_w)
    initial = phi.copy()
    for _ in range(int(round(nx / dt))):
        phi = phi + dt * adv.advect_scalar(phi, fx, fy, fz, g)
        _fill_c(phi, g)
    err = np.sqrt(np.mean((g.interior(phi) - g.interior(initial)) ** 2))
    return err, phi, initial


def test_solid_body_advection_converges():
    """One revolution of a Gaussian: the error decreases with resolution
    (fixed physical shape), the scheme is monotone, and the peak is well
    retained even at coarse resolution."""
    err48, phi48, init48 = _revolution_error(48, 4.0)
    err96, _, _ = _revolution_error(96, 8.0)
    err192, _, _ = _revolution_error(192, 16.0)
    assert err48 < 0.15
    assert err96 < 0.75 * err48
    assert err192 < 0.6 * err96
    # monotone: no new extrema
    assert phi48.max() <= init48.max() + 1e-10
    assert phi48.min() >= init48.min() - 1e-10
    # peak erosion is mild (the Koren limiter is sharp)
    assert phi48.max() >= 0.95 * init48.max()


def test_momentum_advection_uniform_velocity(g):
    """Uniform u advected by any flux field: tendency = -u0 * div(F_u),
    where F_u is the interpolated mass flux around u CVs.  We verify the
    weaker but exact statement for uniform fluxes: tendency is zero."""
    u = np.full(g.shape_u, 5.0)
    fx = np.full(g.shape_u, 2.0)
    fy = np.full(g.shape_v, -1.0)
    fz = np.zeros(g.shape_w)
    tend = adv.advect_u(u, fx, fy, fz, g)
    sx, sy = g.isl_u
    np.testing.assert_allclose(tend[sx, sy], 0.0, atol=1e-12)

    v = np.full(g.shape_v, -3.0)
    tendv = adv.advect_v(v, fx, fy, fz, g)
    sx, sy = g.isl_v
    np.testing.assert_allclose(tendv[sx, sy], 0.0, atol=1e-12)

    w = np.full(g.shape_w, 0.5)
    tendw = adv.advect_w(w, fx, fy, fz, g)
    sx, sy = g.isl
    # boundary faces are not prognosed; interior faces see uniform flux
    np.testing.assert_allclose(tendw[sx, sy, 1:-1], 0.0, atol=1e-12)


def test_momentum_conservation_u(g):
    """x-momentum advection conserves total momentum for periodic flows."""
    r = np.random.default_rng(5)
    u = r.normal(size=g.shape_u)
    _fill_u(u, g)
    fx, fy, fz = _random_fluxes(g, seed=13)
    tend = adv.advect_u(u, fx, fy, fz, g)
    sx, sy = g.isl_u
    h = g.halo
    # drop the duplicated seam face (face h+nx is the image of face h)
    interior = tend[h : h + g.nx, sy]
    total = (interior * g.dz_c[None, None, :]).sum()
    scale = np.abs(interior).max() * g.n_interior_cells * g.dz_c.max()
    assert abs(total) < 1e-9 * max(scale, 1.0)


def test_contravariant_flux_flat(g):
    """On a flat grid the contravariant flux is just rhow with zeroed
    boundary faces."""
    r = np.random.default_rng(2)
    rhou = r.normal(size=g.shape_u)
    rhov = r.normal(size=g.shape_v)
    rhow = r.normal(size=g.shape_w)
    fz = adv.contravariant_mass_flux_w(rhou, rhov, rhow, g)
    np.testing.assert_allclose(fz[:, :, 1:-1], rhow[:, :, 1:-1])
    assert np.all(fz[:, :, 0] == 0.0)
    assert np.all(fz[:, :, -1] == 0.0)


def test_contravariant_flux_terrain(terrain_grid):
    """With terrain and purely horizontal flow over a slope, the
    contravariant flux is negative on the lee slope (flow descends through
    coordinate surfaces) and positive upslope."""
    g = terrain_grid
    rhou = np.ones(g.shape_u)
    rhov = np.zeros(g.shape_v)
    rhow = np.zeros(g.shape_w)
    fz = adv.contravariant_mass_flux_w(rhou, rhov, rhow, g)
    # where the terrain slopes up (dzs/dx > 0), u^3 < 0 for pure-x flow:
    # fz = -rho u dz/dx
    slope_c = 0.5 * (g.dzsdx_u[1:] + g.dzsdx_u[:-1])
    up = slope_c > 1e-6
    dn = slope_c < -1e-6
    mid = g.nz // 2
    assert np.all(fz[:, :, mid][up] < 0)
    assert np.all(fz[:, :, mid][dn] > 0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_limited_face_flux_bounded(seed):
    """Face values stay within the local stencil bounds (monotonicity of
    the Koren-limited reconstruction)."""
    r = np.random.default_rng(seed)
    phi = r.uniform(-1, 1, size=32)
    flux = r.choice([-1.0, 1.0], size=31)
    ff = adv.limited_face_flux(phi, flux, axis=0, limiter=koren)
    # face m (m=1..28) value = ff / flux[m]
    vals = ff / flux[1:-1]
    lo = np.minimum.reduce([phi[:-3], phi[1:-2], phi[2:-1], phi[3:]])
    hi = np.maximum.reduce([phi[:-3], phi[1:-2], phi[2:-1], phi[3:]])
    assert np.all(vals >= lo - 1e-12)
    assert np.all(vals <= hi + 1e-12)
