"""Configuration validation and failure-path tests across modules."""
import numpy as np
import pytest

from repro.core.grid import make_grid
from repro.core.model import AsucaModel, ModelConfig
from repro.core.reference import make_reference_state
from repro.core.rk3 import DynamicsConfig, Rk3Integrator
from repro.workloads.sounding import constant_stability_sounding


# ----------------------------------------------------------- DynamicsConfig
def test_dynamics_config_validation():
    with pytest.raises(ValueError, match="dt"):
        DynamicsConfig(dt=0.0)
    with pytest.raises(ValueError, match="ns"):
        DynamicsConfig(ns=0)
    with pytest.raises(ValueError, match="beta"):
        DynamicsConfig(beta=0.3)
    with pytest.raises(ValueError, match="beta"):
        DynamicsConfig(beta=1.2)
    with pytest.raises(ValueError, match="limiter"):
        DynamicsConfig(limiter="nope")


def test_stage_plan_structure():
    g = make_grid(8, 8, 6, 1000.0, 1000.0, 6000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    m = AsucaModel(g, ref, ModelConfig(dynamics=DynamicsConfig(dt=6.0, ns=8)))
    plan = m.integrator.stage_plan()
    assert plan == [(2.0, 1), (3.0, 4), (6.0, 8)]
    # ns = 1 degenerates gracefully
    m1 = AsucaModel(g, ref, ModelConfig(dynamics=DynamicsConfig(dt=6.0, ns=1)))
    assert m1.integrator.stage_plan() == [(2.0, 1), (3.0, 1), (6.0, 1)]


def test_rayleigh_wiring():
    g = make_grid(8, 8, 6, 1000.0, 1000.0, 6000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    on = Rk3Integrator(g, ref, DynamicsConfig(rayleigh_depth=2000.0),
                       exchange=lambda s, n: None, p_ref=np.zeros(g.shape_c))
    off = Rk3Integrator(g, ref, DynamicsConfig(),
                        exchange=lambda s, n: None, p_ref=np.zeros(g.shape_c))
    assert on.rayleigh_w is not None and on.rayleigh_w.max() > 0
    assert off.rayleigh_w is None


# ------------------------------------------------------ distributed errors
def test_multigpu_rejects_direct_integrator_use():
    from repro.core.model import ModelConfig
    from repro.dist.multigpu import MultiGpuAsuca

    g = make_grid(12, 12, 4, 1000.0, 1000.0, 4000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    machine = MultiGpuAsuca(g, ref, 2, 2, ModelConfig())
    with pytest.raises(RuntimeError, match="step_phases"):
        machine.ranks[0].integrator.exchange(None, None)


def test_multigpu_too_many_ranks():
    from repro.core.model import ModelConfig
    from repro.dist.multigpu import MultiGpuAsuca

    g = make_grid(8, 8, 4, 1000.0, 1000.0, 4000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    with pytest.raises(ValueError, match="too small"):
        MultiGpuAsuca(g, ref, 4, 4, ModelConfig())


# ------------------------------------------------------------- physics off
def test_physics_switches_independent():
    """ice_enabled without physics_enabled is inert (documented: the warm
    chain gates the whole physics step)."""
    g = make_grid(8, 8, 8, 1000.0, 1000.0, 8000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    cfg = ModelConfig(dynamics=DynamicsConfig(dt=4.0, ns=4),
                      physics_enabled=False, ice_enabled=True)
    m = AsucaModel(g, ref, cfg)
    st = m.initial_state()
    st.q["qc"][...] = 1e-3 * st.rho
    m._exchange(st, None)
    before = st.q["qc"].copy()
    new = m.step(st)
    # no microphysics ran: cloud only advected (here: not at all, no wind)
    np.testing.assert_allclose(g.interior(new.q["qc"]),
                               g.interior(before), rtol=1e-12)


def test_helmholtz_rejects_bad_regime():
    """A negative linearization coefficient (unphysical state) is caught
    at assembly time, not as NaNs mid-run."""
    from repro.core.helmholtz import HelmholtzOperator

    g = make_grid(6, 6, 6, 1000.0, 1000.0, 6000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    cp_bad = np.full(g.shape_c, -1e5)
    with pytest.raises(ValueError, match="diagonal"):
        HelmholtzOperator(g, ref.theta_wf, cp_bad, dtau=1.0, beta=1.0)
