"""Tests for the EOS, Coriolis and diffusion kernels."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import constants as c
from repro.core.coriolis import coriolis_parameter, coriolis_tendencies
from repro.core.diffusion import (
    horizontal_laplacian_c,
    horizontal_laplacian_u,
    horizontal_laplacian_v,
)
from repro.core.pressure import (
    eos_pressure,
    exner,
    linearization_coefficient,
    temperature,
)


# ------------------------------------------------------------------ pressure
def test_eos_reference_point(small_grid):
    """rho theta = p0 / Rd gives exactly p = p0."""
    rhotheta = np.full(small_grid.shape_c, c.P0 / c.RD)
    p = eos_pressure(rhotheta, small_grid)
    np.testing.assert_allclose(p, c.P0, rtol=1e-12)


def test_eos_monotone(small_grid):
    r1 = np.full(small_grid.shape_c, 300.0)
    r2 = np.full(small_grid.shape_c, 330.0)
    assert np.all(eos_pressure(r2, small_grid) > eos_pressure(r1, small_grid))


@settings(max_examples=30, deadline=None)
@given(rt=st.floats(min_value=50.0, max_value=800.0))
def test_linearization_is_derivative(rt):
    """Cp_lin equals the numerical derivative dp/d(rho theta)."""
    from repro.core.grid import make_grid

    g = make_grid(4, 4, 2, 100.0, 100.0, 1000.0)
    base = np.full(g.shape_c, rt)
    eps = rt * 1e-6
    p0 = eos_pressure(base, g)
    p1 = eos_pressure(base + eps, g)
    cp = linearization_coefficient(p0, base)
    np.testing.assert_allclose(cp, (p1 - p0) / eps, rtol=1e-4)


def test_exner_and_temperature():
    p = np.array([c.P0, 5.0e4])
    pi = exner(p)
    assert pi[0] == pytest.approx(1.0)
    assert pi[1] < 1.0
    T = temperature(np.array([c.P0]), np.array([c.P0 / (c.RD * 300.0)]))
    assert T[0] == pytest.approx(300.0)


# ------------------------------------------------------------------ coriolis
def test_coriolis_parameter():
    assert coriolis_parameter(90.0) == pytest.approx(2 * c.OMEGA_EARTH)
    assert coriolis_parameter(0.0) == pytest.approx(0.0)
    assert coriolis_parameter(-30.0) < 0


def test_coriolis_zero_f(small_grid):
    du, dv = coriolis_tendencies(
        np.ones(small_grid.shape_u), np.ones(small_grid.shape_v), 0.0, small_grid
    )
    assert np.all(du == 0.0) and np.all(dv == 0.0)


def test_coriolis_uniform_wind(small_grid):
    """Uniform (rhou, rhov): du = +f rhov, dv = -f rhou on interior."""
    f = 1e-4
    rhou = np.full(small_grid.shape_u, 3.0)
    rhov = np.full(small_grid.shape_v, 7.0)
    du, dv = coriolis_tendencies(rhou, rhov, f, small_grid)
    sx, sy = small_grid.isl_u
    np.testing.assert_allclose(du[sx, sy], f * 7.0)
    sx, sy = small_grid.isl_v
    np.testing.assert_allclose(dv[sx, sy], -f * 3.0)


def test_coriolis_energy_neutral(small_grid):
    """The Coriolis force does no net work: sum(u du + v dv) ~ 0 for
    uniform fields (exact for the C-grid averaging on uniform input)."""
    f = 1e-4
    rhou = np.full(small_grid.shape_u, 3.0)
    rhov = np.full(small_grid.shape_v, 7.0)
    du, dv = coriolis_tendencies(rhou, rhov, f, small_grid)
    g = small_grid
    h = g.halo
    work = (rhou[h : h + g.nx, g.isl[1]] * du[h : h + g.nx, g.isl[1]]).sum() + (
        rhov[g.isl[0], h : h + g.ny] * dv[g.isl[0], h : h + g.ny]
    ).sum()
    assert abs(work) < 1e-10 * abs(f * 21.0 * g.n_interior_cells)


def test_coriolis_beta_plane(small_grid):
    """Row-dependent f is applied row-wise."""
    f_rows = np.linspace(1e-4, 2e-4, small_grid.nyh)
    rhov = np.ones(small_grid.shape_v)
    du, _ = coriolis_tendencies(np.zeros(small_grid.shape_u), rhov, f_rows, small_grid)
    h = small_grid.halo
    np.testing.assert_allclose(du[h + 1, h, 0], f_rows[h])
    assert du[h + 1, h + 3, 0] > du[h + 1, h, 0]


# ----------------------------------------------------------------- diffusion
def test_laplacian_of_linear_field_is_zero(small_grid):
    g = small_grid
    X = g.x_c()[:, None, None]
    Y = g.y_c()[None, :, None]
    phi = (2.0 * X + 3.0 * Y) * np.ones(g.shape_c)
    lap = horizontal_laplacian_c(phi, g)
    np.testing.assert_allclose(g.interior(lap), 0.0, atol=1e-12)


def test_laplacian_of_quadratic(small_grid):
    g = small_grid
    X = g.x_c()[:, None, None]
    phi = (X ** 2) * np.ones(g.shape_c)
    lap = horizontal_laplacian_c(phi, g)
    np.testing.assert_allclose(g.interior(lap), 2.0, rtol=1e-9)


def test_laplacian_staggered_shapes(small_grid):
    g = small_grid
    u = np.random.default_rng(0).normal(size=g.shape_u)
    v = np.random.default_rng(1).normal(size=g.shape_v)
    assert horizontal_laplacian_u(u, g).shape == g.shape_u
    assert horizontal_laplacian_v(v, g).shape == g.shape_v


def test_diffusion_damps_extrema(small_grid):
    """Explicit diffusion of a noisy field reduces its variance."""
    g = small_grid
    r = np.random.default_rng(2)
    phi = r.normal(size=g.shape_c)
    from repro.core.boundary import fill_halo_x, fill_halo_y

    var0 = g.interior(phi).var()
    for _ in range(10):
        fill_halo_x(phi, g, False)
        fill_halo_y(phi, g, False)
        lap = horizontal_laplacian_c(phi, g)
        sx, sy = g.isl
        phi[sx, sy] += 0.2 * g.dx ** 2 * lap[sx, sy] / 4.0
    assert g.interior(phi).var() < 0.5 * var0
