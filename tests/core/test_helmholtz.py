"""Tests of the 1-D Helmholtz vertical implicit operator."""
import numpy as np
import pytest

from repro.core.grid import make_grid
from repro.core.helmholtz import HelmholtzOperator
from repro.core.pressure import eos_pressure, linearization_coefficient
from repro.core.reference import make_reference_state
from repro.workloads.sounding import constant_stability_sounding


@pytest.fixture
def op(small_grid):
    ref = make_reference_state(small_grid, constant_stability_sounding())
    rhotheta_hat = ref.rhotheta_c * small_grid.jac[:, :, None]
    p = eos_pressure(rhotheta_hat, small_grid)
    cp_lin = linearization_coefficient(p, rhotheta_hat)
    return HelmholtzOperator(small_grid, ref.theta_wf, cp_lin, dtau=0.5, beta=0.55)


def test_solve_then_apply_roundtrip(op, small_grid):
    rng = np.random.default_rng(0)
    rhs = rng.normal(size=(small_grid.nxh, small_grid.nyh, small_grid.nz - 1))
    w = op.solve(rhs)
    assert w.shape == small_grid.shape_w
    assert np.all(w[:, :, 0] == 0.0) and np.all(w[:, :, -1] == 0.0)
    assert op.residual(w, rhs) < 1e-8 * max(1.0, np.abs(rhs).max())


def test_identity_limit(small_grid):
    """dtau -> 0 makes the operator the identity."""
    ref = make_reference_state(small_grid, constant_stability_sounding())
    rhotheta_hat = ref.rhotheta_c * small_grid.jac[:, :, None]
    p = eos_pressure(rhotheta_hat, small_grid)
    cp_lin = linearization_coefficient(p, rhotheta_hat)
    op0 = HelmholtzOperator(small_grid, ref.theta_wf, cp_lin, dtau=0.0, beta=0.55)
    rng = np.random.default_rng(1)
    rhs = rng.normal(size=(small_grid.nxh, small_grid.nyh, small_grid.nz - 1))
    w = op0.solve(rhs)
    np.testing.assert_allclose(w[:, :, 1:-1], rhs)


def test_diagonal_dominance_from_identity(op):
    """The +1 of the identity keeps the matrix safely invertible: every
    diagonal exceeds the absolute sum of its off-diagonals minus ~the
    buoyancy perturbation, and is positive."""
    assert np.all(op.diag > 0)
    # the acoustic part alone (without g) is symmetric-negative -> check
    # dominance holds to a small tolerance
    slack = op.diag - (np.abs(op.sub) + np.abs(op.sup))
    assert slack.min() > -0.05 * op.diag.max()


def test_damps_vertical_oscillation(op, small_grid):
    """Applying solve to a checkerboard (acoustic) profile reduces its
    amplitude: the implicit step damps vertical sound waves."""
    nz = small_grid.nz
    rhs = np.tile(
        (-1.0) ** np.arange(nz - 1), (small_grid.nxh, small_grid.nyh, 1)
    ).astype(float)
    w = op.solve(rhs)
    assert np.abs(w[:, :, 1:-1]).max() < 1.0  # |A^{-1} checkerboard| < 1


def test_larger_dtau_more_implicit(small_grid):
    """Increasing dtau increases diagonal coupling (coefficients grow)."""
    ref = make_reference_state(small_grid, constant_stability_sounding())
    rhotheta_hat = ref.rhotheta_c * small_grid.jac[:, :, None]
    p = eos_pressure(rhotheta_hat, small_grid)
    cp_lin = linearization_coefficient(p, rhotheta_hat)
    op1 = HelmholtzOperator(small_grid, ref.theta_wf, cp_lin, dtau=0.2, beta=0.55)
    op2 = HelmholtzOperator(small_grid, ref.theta_wf, cp_lin, dtau=2.0, beta=0.55)
    assert np.all(op2.diag >= op1.diag)
    assert np.abs(op2.sup).min() > np.abs(op1.sup).max()


def test_terrain_scaling(terrain_grid):
    """Smaller G (over the mountain) increases the implicit coefficients
    (same physical depth squeezed into the x3 column)."""
    ref = make_reference_state(terrain_grid, constant_stability_sounding())
    rhotheta_hat = ref.rhotheta_c * terrain_grid.jac[:, :, None]
    p = eos_pressure(rhotheta_hat, terrain_grid)
    cp_lin = linearization_coefficient(p, rhotheta_hat)
    op = HelmholtzOperator(terrain_grid, ref.theta_wf, cp_lin, dtau=0.5, beta=0.55)
    zs = terrain_grid.zs
    peak = np.unravel_index(np.argmax(zs), zs.shape)
    plain = np.unravel_index(np.argmin(zs), zs.shape)
    assert (op.diag[peak[0], peak[1]] - 1.0).max() > (op.diag[plain[0], plain[1]] - 1.0).max()
