"""Tests for halo fills, kinematic BC, sponge and relaxation boundaries."""
import numpy as np
import pytest

from repro.core.boundary import (
    RelaxationBC,
    apply_kinematic_surface,
    fill_halo_x,
    fill_halo_y,
    fill_halos_state,
    rayleigh_coefficient,
)
from repro.core.grid import make_grid, bell_mountain
from repro.core.reference import make_reference_state
from repro.core.state import state_from_reference
from repro.workloads.sounding import constant_stability_sounding


def test_periodic_fill_centered(small_grid):
    g = small_grid
    r = np.random.default_rng(0)
    arr = r.normal(size=g.shape_c)
    fill_halo_x(arr, g, staggered=False)
    h, nx = g.halo, g.nx
    np.testing.assert_array_equal(arr[:h], arr[nx : nx + h])
    np.testing.assert_array_equal(arr[nx + h :], arr[h : 2 * h])


def test_periodic_fill_staggered_seam(small_grid):
    g = small_grid
    r = np.random.default_rng(1)
    arr = r.normal(size=g.shape_u)
    fill_halo_x(arr, g, staggered=True)
    h, nx = g.halo, g.nx
    # the two images of the seam face agree exactly
    np.testing.assert_array_equal(arr[h + nx], arr[h])
    np.testing.assert_array_equal(arr[:h], arr[nx : nx + h])
    np.testing.assert_array_equal(arr[h + nx + 1 :], arr[h + 1 : 2 * h + 1])


def test_open_fill_zero_gradient():
    g = make_grid(8, 8, 4, 100.0, 100.0, 4000.0, periodic_x=False, periodic_y=True)
    arr = np.arange(np.prod(g.shape_c), dtype=float).reshape(g.shape_c)
    fill_halo_x(arr, g, staggered=False)
    h = g.halo
    np.testing.assert_array_equal(arr[0], arr[h])
    np.testing.assert_array_equal(arr[-1], arr[h + g.nx - 1])


def test_fill_halos_state_all(small_state):
    st = small_state
    st.rho[: st.grid.halo] = -999.0
    fill_halos_state(st)
    assert not np.any(st.rho == -999.0)


def test_kinematic_surface_flat(small_state):
    apply_kinematic_surface(small_state)
    assert np.all(small_state.rhow[:, :, 0] == 0.0)
    assert np.all(small_state.rhow[:, :, -1] == 0.0)


def test_kinematic_surface_terrain(terrain_grid):
    ref = make_reference_state(terrain_grid, constant_stability_sounding())
    st = state_from_reference(terrain_grid, ref, u0=10.0)
    apply_kinematic_surface(st)
    # on the windward slope air must move up along the terrain: w > 0
    g = terrain_grid
    slope_c = 0.5 * (g.dzsdx_u[1:] + g.dzsdx_u[:-1])
    up = slope_c > 1e-5
    assert np.all(st.rhow[:, :, 0][up] > 0)
    assert np.all(st.rhow[:, :, -1] == 0.0)


def test_rayleigh_profile(small_grid):
    coef_c, coef_f = rayleigh_coefficient(small_grid, depth=3000.0, tau=60.0)
    assert coef_c.shape == (small_grid.nz,)
    assert coef_f.shape == (small_grid.nz + 1,)
    assert np.all(coef_c[small_grid.z_c < small_grid.ztop - 3000.0] == 0.0)
    assert coef_f[-1] == pytest.approx(1.0 / 60.0)
    assert np.all(np.diff(coef_f) >= 0)


def test_rayleigh_disabled(small_grid):
    coef_c, coef_f = rayleigh_coefficient(small_grid, depth=0.0, tau=60.0)
    assert np.all(coef_c == 0.0) and np.all(coef_f == 0.0)


class TestRelaxationBC:
    def _grid(self):
        return make_grid(16, 12, 4, 500.0, 500.0, 4000.0,
                         periodic_x=False, periodic_y=False)

    def test_nudges_toward_target(self):
        g = self._grid()
        bc = RelaxationBC(g, width=4, tau=10.0)
        ref = make_reference_state(g, constant_stability_sounding())
        st = state_from_reference(g, ref)
        target = st.rho + 0.01
        bc.set_target("rho", target)
        before = st.rho.copy()
        bc.apply(st, dt=10.0)
        h = g.halo
        # edge cells moved toward the target...
        assert st.rho[h, h, 0] > before[h, h, 0]
        # ...interior cells (outside the band) untouched
        assert st.rho[h + 8, h + 6, 0] == before[h + 8, h + 6, 0]
        # never overshoots
        assert np.all(st.rho <= target + 1e-15)

    def test_long_relaxation_converges(self):
        g = self._grid()
        bc = RelaxationBC(g, width=4, tau=1.0)
        arr_grid = make_reference_state(g, constant_stability_sounding())
        st = state_from_reference(g, arr_grid)
        target = st.rho * 1.02
        bc.set_target("rho", target)
        for _ in range(200):
            bc.apply(st, dt=5.0)
        h = g.halo
        # the outermost interior cell is fully relaxed
        np.testing.assert_allclose(st.rho[h, h, :], target[h, h, :], rtol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            RelaxationBC(self._grid(), width=0)

    def test_staggered_targets(self):
        g = self._grid()
        bc = RelaxationBC(g, width=3, tau=5.0)
        ref = make_reference_state(g, constant_stability_sounding())
        st = state_from_reference(g, ref, u0=5.0)
        bc.set_target("rhou", np.zeros(g.shape_u))
        before = st.rhou.copy()
        bc.apply(st, dt=5.0)
        h = g.halo
        assert abs(st.rhou[h, h, 0]) < abs(before[h, h, 0])
