"""CLI tests for the observability surface: ``run --profile``,
``run --trace/--metrics``, and the ``trace`` subcommand."""
import json

from repro.cli import main

SMALL = ["--nx", "16", "--ny", "16", "--nz", "8", "--steps", "1"]


def test_run_profile_prints_phase_report(capsys):
    assert main(["run", "warm-bubble", *SMALL, "--profile"]) == 0
    out = capsys.readouterr().out
    assert "advect_momentum" in out
    assert "phase" in out and "seconds" in out


def test_run_trace_single_domain(tmp_path, capsys):
    trace = tmp_path / "single.json"
    assert main(["run", "mountain-wave", *SMALL, "--nz", "10",
                 "--trace", str(trace), "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "kernel.launches" in out and "gflops.sustained" in out
    doc = json.load(open(trace))
    cats = {ev.get("cat") for ev in doc["traceEvents"] if ev["ph"] == "X"}
    assert "kernel" in cats and "h2d" in cats


def test_trace_subcommand_decomposed(tmp_path, capsys):
    trace = tmp_path / "out.json"
    jsonl = tmp_path / "out.jsonl"
    assert main(["trace", "warm-bubble", *SMALL, "--ranks", "2x2",
                 "-o", str(trace), "--jsonl", str(jsonl)]) == 0
    out = capsys.readouterr().out
    assert "trace session: warm-bubble" in out
    assert "halo traffic by rank pair" in out

    doc = json.load(open(trace))
    names = {ev["args"]["name"] for ev in doc["traceEvents"]
             if ev["ph"] == "M" and ev["name"] == "process_name"}
    assert {"rank0", "rank1", "rank2", "rank3"} <= names
    lines = [json.loads(line) for line in open(jsonl)]
    assert lines[-1]["type"] == "metrics"
