"""ResultCache: LRU behavior, counters, and the capacity bound."""
import pytest

from repro.serve import ResultCache


def test_hit_miss_counters_and_hit_rate():
    cache = ResultCache(4)
    assert cache.get("a") is None
    cache.put("a", "result-a")
    assert cache.get("a") == "result-a"
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == pytest.approx(0.5)
    # an empty cache has no lookups, not a zero division
    assert ResultCache().hit_rate == 0.0


def test_lru_evicts_least_recently_used():
    cache = ResultCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")            # refresh a; b becomes the LRU entry
    cache.put("c", 3)
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.evictions == 1
    assert cache.keys() == ["a", "c"]


def test_put_refreshes_recency_and_overwrites():
    cache = ResultCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)        # refresh + overwrite, no eviction
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 10
    assert len(cache) == 2


def test_contains_does_not_disturb_counters_or_recency():
    cache = ResultCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert "a" in cache and "nope" not in cache
    assert (cache.hits, cache.misses) == (0, 0)
    cache.put("c", 3)         # "a" is still the LRU despite the __contains__
    assert "a" not in cache


def test_zero_capacity_disables_caching():
    cache = ResultCache(0)
    cache.put("a", 1)
    assert len(cache) == 0
    assert cache.get("a") is None
    with pytest.raises(ValueError):
        ResultCache(-1)


def test_seed_participates_in_the_cache_key():
    """Ensemble members differ only by seed: same seed must hit (a
    retried member reuses its result), different seeds must miss."""
    from repro.api import RunSpec

    cache = ResultCache(4)
    member = RunSpec(workload="vortex", nx=16, ny=16, nz=8, steps=2,
                     seed=7)
    cache.put(member.spec_hash(), "member-7-state")
    same = RunSpec(workload="vortex", nx=16, ny=16, nz=8, steps=2, seed=7)
    other = RunSpec(workload="vortex", nx=16, ny=16, nz=8, steps=2,
                    seed=8)
    assert cache.get(same.spec_hash()) == "member-7-state"
    assert cache.get(other.spec_hash()) is None
