"""RunSpec.spec_hash — the content identity the result cache keys on —
and the hardened parse_ranks validation."""
import pytest

from repro.api import Experiment, RunSpec, parse_ranks


# ---------------------------------------------------------- spec_hash
def test_hash_is_stable_across_calls_and_instances():
    a = RunSpec(workload="warm-bubble", nx=16, ny=16, nz=8, steps=3)
    b = RunSpec(workload="warm-bubble", nx=16, ny=16, nz=8, steps=3)
    assert a.spec_hash() == b.spec_hash() == a.spec_hash()
    assert len(a.spec_hash()) == 64            # sha256 hex


def test_semantic_changes_change_the_hash():
    base = RunSpec(workload="warm-bubble", steps=3)
    assert base.spec_hash() != RunSpec(workload="warm-bubble",
                                       steps=4).spec_hash()
    assert base.spec_hash() != RunSpec(workload="shear-layer",
                                       steps=3).spec_hash()
    assert base.spec_hash() != RunSpec(workload="warm-bubble", steps=3,
                                       ice=True).spec_hash()


def test_equivalent_normalizations_hash_identically():
    # ranks as a string vs a tuple describe the same decomposition
    s = RunSpec(backend="multigpu", ranks="2x2", steps=2)
    t = RunSpec(backend="multigpu", ranks=(2, 2), steps=2)
    assert s.spec_hash() == t.spec_hash()
    # backend 'auto' resolves before hashing
    assert (RunSpec(backend="auto", ranks=(2, 1), steps=2).spec_hash()
            == RunSpec(backend="multigpu", ranks=(2, 1), steps=2)
            .spec_hash())


def test_observability_fields_never_affect_the_hash(tmp_path):
    # backend pinned: with 'auto', tracing flags legitimately change the
    # resolved backend (gpu vs cpu), which IS semantic
    plain = RunSpec(steps=2, backend="gpu")
    traced = RunSpec(steps=2, backend="gpu",
                     trace_path=str(tmp_path / "t.json"),
                     metrics=True, profile=True, summary=True,
                     history_path=str(tmp_path / "h.nc"))
    assert plain.spec_hash() == traced.spec_hash()


def test_fault_plan_is_semantic():
    assert (RunSpec(steps=5).spec_hash()
            != RunSpec(steps=5, faults="drop@1").spec_hash())
    # string and parsed forms of the same plan agree
    from repro.resilience.faults import FaultPlan
    assert (RunSpec(steps=5, faults="drop@1").spec_hash()
            == RunSpec(steps=5,
                       faults=FaultPlan.parse("drop@1")).spec_hash())


def test_run_result_carries_the_spec_hash():
    spec = RunSpec(workload="warm-bubble", nx=16, ny=16, nz=8, steps=1)
    result = Experiment(spec).prepare().run()
    assert result.spec_hash == spec.spec_hash()


# --------------------------------------------------------- parse_ranks
def test_parse_ranks_accepted_forms():
    assert parse_ranks(None) is None
    assert parse_ranks("2x3") == (2, 3)
    assert parse_ranks("4X1") == (4, 1)        # case-insensitive
    assert parse_ranks((3, 2)) == (3, 2)
    assert parse_ranks([2, 2]) == (2, 2)


@pytest.mark.parametrize("bad", ["abc", "2x", "x2", "1x2x3", "2.5x2"])
def test_parse_ranks_rejects_malformed_strings(bad):
    with pytest.raises(ValueError):
        parse_ranks(bad)


@pytest.mark.parametrize("bad", ["0x2", "2x0", "-1x2", (0, 4), (2, -3)])
def test_parse_ranks_rejects_non_positive_counts(bad):
    with pytest.raises(ValueError, match=">= 1"):
        parse_ranks(bad)


def test_normalized_propagates_rank_validation():
    with pytest.raises(ValueError):
        RunSpec(backend="multigpu", ranks="0x4").normalized()


# ------------------------------------------------------------ semantic seed
def test_unset_seed_is_hash_invisible():
    # every spec hashed before the seed field existed must keep its hash:
    # seed=None stays out of the canonical form entirely
    plain = RunSpec(workload="warm-bubble", steps=3)
    assert "seed" not in plain.canonical_dict()
    assert (plain.spec_hash()
            == RunSpec(workload="warm-bubble", steps=3,
                       seed=None).spec_hash())


def test_set_seed_is_semantic():
    base = RunSpec(workload="warm-bubble", steps=3)
    seeded = RunSpec(workload="warm-bubble", steps=3, seed=1)
    assert seeded.canonical_dict()["seed"] == 1
    assert base.spec_hash() != seeded.spec_hash()
    assert seeded.spec_hash() != RunSpec(workload="warm-bubble", steps=3,
                                         seed=2).spec_hash()
