"""Scheduler self-profiling: the SchedulerProfile populated by a run,
its wall/deterministic split, and the guarantee that none of it leaks
into the replay-identical ServiceReport."""
from repro.obs import SchedulerProfile
from repro.serve import ForecastService, GpuFleet, poisson_workload


def _run(n_jobs=60, **kw):
    svc = ForecastService(GpuFleet(4), execute=False, **kw)
    rep = svc.run(poisson_workload(n_jobs, seed=7, rate=60.0))
    return svc, rep


def test_profile_is_populated_by_a_run():
    svc, rep = _run()
    p = svc.profile
    assert p.events_total == sum(p.events_by_kind.values()) > 0
    assert p.events_by_kind["arrive"] == rep.n_submitted
    assert p.passes == p.pass_wall.count > 0
    assert p.started <= rep.n_done
    assert p.makespan_s == rep.makespan_s
    assert p.select_calls > 0 and p.jobs_scanned >= 0
    assert p.run_wall_s > 0.0


def test_wall_keys_are_confined_to_the_wall_section():
    svc, _ = _run()
    d = svc.profile.as_dict()
    assert set(d) == {"events", "passes", "modeled", "wall"}

    def walk(node, path=""):
        if isinstance(node, dict):
            for k, v in node.items():
                yield from walk(v, f"{path}.{k}")
        else:
            yield path
    for path in walk({k: v for k, v in d.items() if k != "wall"}):
        assert "wall" not in path, path
    assert "run_wall_s" in d["wall"]
    assert "handlers" in d["wall"]


def test_deterministic_half_is_replay_stable():
    def det(profile: SchedulerProfile):
        d = profile.as_dict()
        d.pop("wall")
        return d
    a, _ = _run()
    b, _ = _run()
    assert det(a.profile) == det(b.profile)


def test_profile_stays_off_the_service_report():
    svc, rep = _run()
    blob = repr(rep.as_dict())
    assert "wall" not in blob and "profile" not in blob
    assert not hasattr(rep, "profile")
    assert svc.profile.text()        # renders without error


def test_events_per_second_rates_are_present():
    svc, _ = _run()
    d = svc.profile.as_dict()
    assert d["modeled"]["events_per_modeled_s"] > 0
    assert d["wall"]["events_per_wall_s"] > 0
    assert d["passes"]["queue_scan"]["count"] == d["passes"]["count"]
