"""The ``repro serve`` subcommand: reports, JSON output, workload-file
replay, and the exported Chrome trace."""
import json

from repro.cli import main
from repro.serve import Submission, dump_workload, load_workload
from repro.api import RunSpec

FAST = ["--no-execute"]          # scheduling is what these tests probe


def test_serve_prints_a_report(capsys):
    assert main(["serve", "--jobs", "12", "--gpus", "4", *FAST]) == 0
    out = capsys.readouterr().out
    assert "forecast service report" in out
    assert "12 submitted" in out
    assert "fleet utilization" in out
    assert "cache:" in out


def test_serve_json_report_is_deterministic(capsys):
    args = ["serve", "--jobs", "20", "--gpus", "4", "--seed", "7",
            "--json", *FAST]
    assert main(args) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(args) == 0
    second = json.loads(capsys.readouterr().out)
    assert first == second
    assert first["n_submitted"] == 20
    assert first["policy"] == "fifo"


def test_serve_policy_and_jobs_table(capsys):
    assert main(["serve", "--jobs", "10", "--gpus", "4",
                 "--policy", "sjf", "--jobs-table", *FAST]) == 0
    out = capsys.readouterr().out
    assert "policy sjf" in out
    assert "workload" in out and "hash" in out   # the per-job table


def test_serve_workload_file_round_trip(tmp_path, capsys):
    subs = [
        Submission(t=0.0, spec=RunSpec(workload="warm-bubble", nx=16,
                                       ny=16, nz=8, steps=2)),
        Submission(t=0.01, spec=RunSpec(workload="shear-layer", nx=32,
                                        ny=4, nz=16, steps=2), priority=2),
        Submission(t=5.0, spec=RunSpec(workload="warm-bubble", nx=16,
                                       ny=16, nz=8, steps=2)),
    ]
    path = tmp_path / "wl.jsonl"
    dump_workload(subs, str(path))
    # the file round-trips through the loader...
    loaded = load_workload(str(path))
    assert [s.spec.workload for s in loaded] == [
        "warm-bubble", "shear-layer", "warm-bubble"]
    assert loaded[1].priority == 2
    # ...and replays through the CLI; the t=5.0 duplicate hits the cache
    assert main(["serve", "--workload-file", str(path), "--gpus", "2",
                 "--json", *FAST]) == 0
    rep = json.loads(capsys.readouterr().out)
    assert rep["n_submitted"] == 3
    assert rep["n_cached"] == 1


def test_serve_writes_chrome_trace(tmp_path, capsys):
    trace = tmp_path / "serve.json"
    assert main(["serve", "--jobs", "8", "--gpus", "4",
                 "--trace", str(trace), *FAST]) == 0
    doc = json.load(open(trace))
    phs = {ev["ph"] for ev in doc["traceEvents"]}
    assert "C" in phs            # queue-depth counter series
    assert "X" in phs            # per-job spans
    counter_names = {ev["name"] for ev in doc["traceEvents"]
                     if ev["ph"] == "C"}
    assert "queue.depth" in counter_names


def test_serve_faulty_workload_file_is_a_clear_error(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"t": 0.0, "workload": "warm-bubble"}\nnot json\n')
    assert main(["serve", "--workload-file", str(bad)]) != 0
    err = capsys.readouterr().err
    assert "bad.jsonl:2" in err


def test_workload_round_trip_keeps_seed_and_member(tmp_path):
    subs = [
        Submission(t=0.0, spec=RunSpec(workload="vortex", nx=16, ny=16,
                                       nz=8, steps=2, seed=123), member=1),
        Submission(t=0.1, spec=RunSpec(workload="vortex", nx=16, ny=16,
                                       nz=8, steps=2)),
    ]
    path = tmp_path / "ens.jsonl"
    dump_workload(subs, str(path))
    loaded = load_workload(str(path))
    assert loaded[0].spec.seed == 123
    assert loaded[0].member == 1
    # identity survives the file: the reloaded member hashes identically
    assert loaded[0].spec.spec_hash() == subs[0].spec.spec_hash()
    assert loaded[1].spec.seed is None and loaded[1].member is None
    # both are metadata-elided when unset — old files stay valid, new
    # files stay minimal
    first, second = path.read_text().splitlines()
    assert '"member"' in first and '"seed"' in first
    assert '"member"' not in second and '"seed"' not in second


def test_poisson_member_bursts_are_correlated_gangs():
    from repro.serve import poisson_workload

    subs = poisson_workload(40, seed=3, ensemble_fraction=0.5,
                            ensemble_members=4)
    assert len(subs) == 40
    members = [s for s in subs if s.member is not None]
    assert members
    gangs = {}
    for s in members:
        gangs.setdefault(s.t, []).append(s)
    for gang in gangs.values():
        gang.sort(key=lambda s: s.member)
        # one instant, consecutive member indices, consecutive seeds off
        # one gang draw — perturbed copies of one base shape
        assert [s.member for s in gang] == list(range(len(gang)))
        seeds = [s.spec.seed for s in gang]
        assert seeds == [seeds[0] + m for m in range(len(gang))]
        assert len({s.spec.workload for s in gang}) == 1
    # bursts stay deterministic per seed
    again = poisson_workload(40, seed=3, ensemble_fraction=0.5,
                             ensemble_members=4)
    assert subs == again


def test_poisson_default_stream_has_no_members():
    from repro.serve import poisson_workload

    subs = poisson_workload(20, seed=5)
    assert all(s.member is None and s.spec.seed is None for s in subs)
