"""ForecastService end to end: determinism, cache identity, crash
recovery, policy comparison, and the exported Chrome trace."""
import numpy as np
import pytest

from repro.api import Experiment, RunSpec
from repro.obs import TraceSession
from repro.obs.exporters import chrome_trace
from repro.resilience.retry import RetryPolicy
from repro.serve import (
    ForecastService,
    GpuFleet,
    JobState,
    Submission,
    poisson_workload,
)

SMALL = dict(workload="warm-bubble", nx=16, ny=16, nz=8, steps=2)


def serve(workload, *, gpus=4, session=None, execute=True, **kw):
    svc = ForecastService(GpuFleet(gpus), session=session,
                          execute=execute, **kw)
    return svc, svc.run(workload)


# -------------------------------------------------------- determinism
def test_replaying_the_same_workload_is_deterministic():
    workload = poisson_workload(50, seed=0)
    _, rep_a = serve(workload, gpus=4, execute=False)
    _, rep_b = serve(poisson_workload(50, seed=0), gpus=4, execute=False)
    assert rep_a.as_dict() == rep_b.as_dict()
    # a different seed is a different workload (sanity of the generator)
    _, rep_c = serve(poisson_workload(50, seed=1), gpus=4, execute=False)
    assert rep_c.as_dict() != rep_a.as_dict()


def test_service_instance_runs_once():
    svc, _ = serve(poisson_workload(3, seed=0), execute=False)
    with pytest.raises(RuntimeError):
        svc.run(poisson_workload(3, seed=0))


# ----------------------------------------------------------- caching
def test_cache_hit_is_bit_identical_to_a_fresh_run():
    spec = RunSpec(**SMALL)
    # the duplicate arrives long after the original finished, so it is
    # answered from the cache rather than run again
    workload = [Submission(t=0.0, spec=spec),
                Submission(t=100.0, spec=spec)]
    svc, rep = serve(workload)
    first, dup = svc.jobs
    assert first.state is JobState.DONE
    assert dup.state is JobState.CACHED
    assert rep.n_cached == 1 and rep.cache_hits == 1
    assert dup.wait == 0.0

    fresh = Experiment(spec).prepare().run()
    for name in ("rho", "rhou", "rhov", "rhow", "rhotheta"):
        assert np.array_equal(getattr(dup.result.state, name),
                              getattr(fresh.state, name))


def test_duplicate_arriving_before_completion_runs_fresh():
    spec = RunSpec(**SMALL)
    workload = [Submission(t=0.0, spec=spec),
                Submission(t=1e-6, spec=spec)]   # original still running
    svc, rep = serve(workload)
    assert rep.n_done == 2 and rep.n_cached == 0


def test_cache_capacity_zero_disables_hits():
    spec = RunSpec(**SMALL)
    workload = [Submission(t=0.0, spec=spec),
                Submission(t=100.0, spec=spec)]
    _, rep = serve(workload, cache_capacity=0, execute=False)
    assert rep.n_cached == 0 and rep.n_done == 2


# --------------------------------------------------------- resilience
def test_crash_then_retry_then_done():
    workload = [Submission(t=0.0, spec=RunSpec(**SMALL))]
    svc, rep = serve(workload, faults="crash@0",
                     retry=RetryPolicy(max_retries=2, backoff_base=0.01))
    job = svc.jobs[0]
    assert job.state is JobState.DONE
    assert job.attempts == 2 and job.crashes == 1
    assert rep.crashes == 1 and rep.retries == 1 and rep.n_evicted == 0
    # the crash costs real modeled time: half an attempt + backoff
    assert job.turnaround > job.est_seconds


def test_repeated_crashes_evict_after_max_attempts():
    workload = [Submission(t=0.0, spec=RunSpec(**SMALL))]
    svc, rep = serve(workload, faults="crash@0:x9",
                     retry=RetryPolicy(max_retries=2, backoff_base=0.01),
                     execute=False)
    job = svc.jobs[0]
    assert job.state is JobState.EVICTED
    assert job.attempts == 3 and job.crashes == 3       # 1 try + 2 retries
    assert rep.n_evicted == 1 and rep.n_done == 0
    assert "evicted" in job.error


def test_checkpointing_job_resumes_retry_from_last_checkpoint(tmp_path):
    spec = RunSpec(**SMALL, checkpoint_every=1,
                   checkpoint_dir=str(tmp_path))
    workload = [Submission(t=0.0, spec=spec)]
    svc, _ = serve(workload, faults="crash@0",
                   retry=RetryPolicy(max_retries=2, backoff_base=0.0),
                   execute=False)
    job = svc.jobs[0]
    assert job.state is JobState.DONE
    assert job.progress == pytest.approx(0.5)
    # without the checkpoint, the retry would restart from scratch and
    # pay 0.5 est (crashed half) + est (full redo); resuming from the
    # mid-run checkpoint pays 0.5 + 0.5 with zero backoff
    assert job.turnaround == pytest.approx(1.0 * job.est_seconds)


def test_oversized_gang_is_rejected_by_admission_control():
    spec = RunSpec(**SMALL, backend="multigpu", ranks=(2, 2))
    svc, rep = serve([Submission(t=0.0, spec=spec)], gpus=2, execute=False)
    assert rep.n_failed == 1 and rep.n_done == 0
    assert rep.jobs[0]["state"] == "failed"
    assert "needs 4 GPUs" in svc.jobs[0].error


# ------------------------------------------------------------ policy
def test_sjf_p95_wait_not_worse_than_fifo_on_mixed_sizes():
    workload = poisson_workload(50, seed=0)
    _, fifo = serve(workload, gpus=8, policy="fifo", execute=False)
    _, sjf = serve(workload, gpus=8, policy="sjf", execute=False)
    assert sjf.wait_s["p95"] <= fifo.wait_s["p95"] + 1e-12
    assert fifo.n_done + fifo.n_cached == 50
    assert sjf.n_done + sjf.n_cached == 50


def test_priority_jobs_wait_less_than_background_under_load():
    rng_jobs = poisson_workload(40, seed=3, duplicate_fraction=0.0,
                                priorities=(0, 2))
    _, rep = serve(rng_jobs, gpus=4, policy="priority", execute=False)
    waits = {0: [], 2: []}
    for j in rep.jobs:
        if j["wait"] is not None:
            waits[j["priority"]].append(j["wait"])
    assert waits[0] and waits[2]
    assert np.mean(waits[2]) <= np.mean(waits[0])


# ------------------------------------------------------------- trace
def test_service_exports_one_chrome_trace_with_spans_and_counters():
    session = TraceSession(name="serve-test")
    workload = poisson_workload(12, seed=0)
    _, rep = serve(workload, gpus=4, session=session, execute=False)
    session.finalize()
    doc = chrome_trace(session)
    events = doc["traceEvents"]

    spans = [ev for ev in events if ev["ph"] == "X"
             and ev.get("cat") == "job"]
    assert len(spans) >= rep.n_done        # one span per GPU per attempt
    # spans live on per-GPU fleet tracks, in modeled microseconds
    names = {ev["args"]["name"] for ev in events
             if ev["ph"] == "M" and ev["name"] == "thread_name"}
    assert any(n.startswith("gpu") for n in names)

    counters = {ev["name"] for ev in events if ev["ph"] == "C"}
    assert {"queue.depth", "fleet.gpus_in_use", "jobs.running"} <= counters

    # the report's headline numbers also land in the metrics registry
    snap = session.metrics.as_dict()
    flat = str(snap)
    assert "serve.jobs.submitted" in flat
    assert "serve.utilization" in flat
