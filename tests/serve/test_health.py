"""Fleet health monitor: SLO rule grammar, EWMA anomaly detection, and
the ForecastService wiring — a seeded saturated workload must fire a
deterministic alert that lands in both the report and the trace."""
import pytest

from repro.obs.doctor.health import HealthMonitor, RollingSeries, SloRule
from repro.obs.metrics import percentile, percentile_summary
from repro.obs.trace import TraceSession
from repro.serve import ForecastService, GpuFleet, poisson_workload

N_JOBS = 30
SEED = 0


# ------------------------------------------------------------ rule grammar
@pytest.mark.parametrize("expr, metric, agg, op, threshold, budget", [
    ("p95_wait_s<0.5", "wait_s", "p95", "<", 0.5, None),
    ("queue_depth<=32", "queue_depth", "last", "<=", 32.0, None),
    ("mean_utilization >= 0.2", "utilization", "mean", ">=", 0.2, None),
    ("wait_s<0.5@0.2", "wait_s", "last", "<", 0.5, 0.2),
    ("ewma_cache_hit_rate>0.1", "cache_hit_rate", "ewma", ">", 0.1, None),
])
def test_slo_rule_parse(expr, metric, agg, op, threshold, budget):
    rule = SloRule.parse(expr)
    assert (rule.metric, rule.agg, rule.op) == (metric, agg, op)
    assert rule.threshold == pytest.approx(threshold)
    assert rule.budget == (pytest.approx(budget) if budget is not None
                           else None)


@pytest.mark.parametrize("expr", [
    "", "wait_s", "wait_s<abc", "wait_s<0.5@2.0", "wait_s<0.5@x", "<0.5",
])
def test_slo_rule_parse_rejects(expr):
    with pytest.raises(ValueError):
        SloRule.parse(expr)


def test_rolling_series_uses_shared_percentiles():
    s = RollingSeries(window=8)
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    for v in values:
        s.add(v)
    assert s.aggregate("p95") == pytest.approx(percentile(values, 95))
    summary = s.summary()
    expect = percentile_summary(values)
    for key, val in expect.items():
        assert summary[key] == pytest.approx(val)
    assert summary["n"] == 5.0


def test_burn_rate_budget():
    rule = SloRule.parse("lat<1.0@0.25")
    s = RollingSeries(window=8)
    for v in (0.5, 0.5, 2.0):       # 1/3 of the window violates
        s.add(v)
    violated, observed = rule.evaluate(s)
    assert violated and observed == pytest.approx(1 / 3)
    s.add(0.5)                       # back to 1/4 == budget: not over
    assert rule.evaluate(s) == (False, pytest.approx(0.25))


# --------------------------------------------------------------- detectors
def test_anomaly_detection_is_edge_triggered():
    mon = HealthMonitor(anomaly_sigma=4.0, warmup=8)
    for i in range(20):
        mon.observe("q", 2.0 + 0.1 * (i % 2), t=i * 0.1)
    assert not mon.alerts
    first = mon.observe("q", 40.0, t=2.0)        # excursion fires once
    assert [a.kind for a in first] == ["anomaly"]
    assert mon.observe("q", 40.0, t=2.1) == []   # still active: no re-fire
    for i in range(30):                          # recover and re-arm
        mon.observe("q", 2.0, t=3.0 + i * 0.1)
    again = mon.observe("q", 40.0, t=7.0)
    assert [a.kind for a in again] == ["anomaly"]


def test_slo_alert_fires_and_rearms():
    mon = HealthMonitor("queue_depth<3")
    assert mon.observe("queue_depth", 2.0, t=0.0) == []
    fired = mon.observe("queue_depth", 5.0, t=1.0)
    assert len(fired) == 1 and fired[0].rule == "queue_depth<3"
    assert mon.observe("queue_depth", 6.0, t=2.0) == []      # edge-triggered
    assert mon.observe("queue_depth", 1.0, t=3.0) == []      # recovery
    assert len(mon.observe("queue_depth", 9.0, t=4.0)) == 1  # re-armed
    assert mon.breached and len(mon.alerts) == 2


# ------------------------------------------------------- service wiring
def _serve(slo, session=None):
    svc = ForecastService(GpuFleet(4), policy="fifo", execute=False,
                          session=session, slo=slo)
    return svc.run(poisson_workload(N_JOBS, seed=SEED))


def test_saturated_service_fires_deterministic_alert():
    """The seeded Poisson stream saturates a 4-GPU fleet; a queue-depth
    SLO must fire, identically on every replay, and show up in the
    report dict, the rendered text, and the session's instant events."""
    session = TraceSession(name="slo")
    report = _serve("queue_depth<1,p95_wait_s<10", session=session)
    assert report.slo_rules == ["queue_depth<1", "p95_wait_s<10"]
    assert report.alerts, "saturated fleet fired no alert"
    alert = report.alerts[0]
    assert alert["kind"] == "slo" and alert["metric"] == "queue_depth"
    assert "queue_depth" in report.health
    assert f"ALERT [{alert['kind']}]" in report.render()

    trace_alerts = [i for i in session.instants if i.cat == "alert"]
    assert len(trace_alerts) == len(report.alerts)
    assert trace_alerts[0].args["rule"] == "queue_depth<1"
    assert trace_alerts[0].ts == pytest.approx(alert["t"])

    replay = _serve("queue_depth<1,p95_wait_s<10")
    assert replay.as_dict() == report.as_dict()


def test_met_objectives_produce_no_alerts():
    report = _serve("p95_wait_s<1e9")
    assert report.alerts == [] and report.slo_rules == ["p95_wait_s<1e9"]
    assert "all objectives met" in report.render()


def test_unmonitored_service_report_unchanged():
    report = _serve(None)
    assert report.alerts == [] and report.slo_rules == []
    assert report.health == {}


def test_malformed_slo_raises():
    with pytest.raises(ValueError):
        ForecastService(GpuFleet(2), slo="queue_depth!!1")
