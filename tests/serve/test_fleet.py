"""GpuFleet: atomic gang allocation and busy-time accounting."""
import pytest

from repro.gpu.spec import FERMI_M2050, TESLA_S1070
from repro.serve import GpuFleet


def test_acquire_is_atomic_all_or_nothing():
    fleet = GpuFleet(4)
    assert fleet.acquire(0, 3) == (0, 1, 2)
    # only one GPU free: a 2-GPU gang gets nothing, not a partial grant
    assert fleet.acquire(1, 2) is None
    assert fleet.holding(1) == ()
    assert fleet.free_gpus == 1
    # ... but a 1-GPU job still fits
    assert fleet.acquire(2, 1) == (3,)
    assert fleet.in_use == 4


def test_release_charges_busy_seconds_per_gpu():
    fleet = GpuFleet(4)
    fleet.acquire(7, 2)
    assert fleet.release(7, busy_seconds=1.5) == (0, 1)
    assert fleet.busy_s == [1.5, 1.5, 0.0, 0.0]
    assert fleet.total_busy_s == 3.0
    # utilization over a 3s makespan: 3 busy GPU-s of 12 capacity
    assert fleet.utilization(3.0) == pytest.approx(0.25)
    assert fleet.utilization(0.0) == 0.0


def test_lowest_free_first_placement_is_deterministic():
    fleet = GpuFleet(4)
    fleet.acquire(0, 2)
    fleet.acquire(1, 1)
    fleet.release(0)
    # the freed low indices are handed out again first
    assert fleet.acquire(2, 2) == (0, 1)


def test_double_acquire_and_empty_release_are_errors():
    fleet = GpuFleet(2)
    fleet.acquire(0, 1)
    with pytest.raises(RuntimeError):
        fleet.acquire(0, 1)
    with pytest.raises(RuntimeError):
        fleet.release(99)
    with pytest.raises(ValueError):
        fleet.acquire(1, 0)
    with pytest.raises(ValueError):
        GpuFleet(0)


def test_peak_in_use_tracks_high_water_mark():
    fleet = GpuFleet(4)
    fleet.acquire(0, 3)
    fleet.release(0)
    fleet.acquire(1, 1)
    assert fleet.peak_in_use == 3
    assert fleet.in_use == 1


def test_named_machines_and_device_spec_strings():
    assert GpuFleet.tsubame12().n_gpus == 528
    assert GpuFleet.tsubame12().spec is TESLA_S1070
    assert GpuFleet.tsubame20().spec is FERMI_M2050
    assert GpuFleet(2, "m2050").spec is FERMI_M2050
    assert "4x" in GpuFleet(4).name
