"""GangScheduler: policy ordering, bounded-queue shedding, gang
reservations and the backfill-never-delays-the-head invariant."""
import pytest

from repro.api import RunSpec
from repro.serve import GangScheduler, GpuFleet, JobState, Policy, QueueFull
from repro.serve.jobs import Job

SPEC = RunSpec(steps=1).normalized()


def mkjob(index, *, gpus=1, est=1.0, arrival=0.0, priority=0):
    return Job(index=index, spec=SPEC, priority=priority, arrival=arrival,
               gpus_needed=gpus, est_seconds=est,
               spec_hash=f"job{index:04d}")


def submit_all(sched, jobs, now=0.0):
    for job in jobs:
        sched.submit(job, now)


# ----------------------------------------------------------- ordering
def test_fifo_orders_by_arrival():
    sched = GangScheduler("fifo")
    submit_all(sched, [mkjob(0, arrival=0.2), mkjob(1, arrival=0.1),
                       mkjob(2, arrival=0.1)])
    assert [j.index for j in sched._ordered()] == [1, 2, 0]


def test_priority_orders_by_level_then_fifo():
    sched = GangScheduler(Policy.PRIORITY)
    submit_all(sched, [mkjob(0, priority=0), mkjob(1, priority=2),
                       mkjob(2, priority=2, arrival=0.5), mkjob(3, priority=1)])
    assert [j.index for j in sched._ordered()] == [1, 2, 3, 0]


def test_sjf_orders_by_modeled_service_time():
    sched = GangScheduler("sjf")
    submit_all(sched, [mkjob(0, est=3.0), mkjob(1, est=1.0),
                       mkjob(2, est=2.0)])
    assert [j.index for j in sched._ordered()] == [1, 2, 0]


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        GangScheduler("lifo")


# -------------------------------------------------------- backpressure
def test_shedding_starts_exactly_at_the_bound():
    sched = GangScheduler("fifo", max_depth=3)
    jobs = [mkjob(i) for i in range(5)]
    results = [sched.submit(j, now=float(i)) for i, j in enumerate(jobs)]
    # the first max_depth submissions are admitted...
    assert results[:3] == [None, None, None]
    assert all(j.state is JobState.QUEUED for j in jobs[:3])
    # ...and the bound sheds from the very next one
    assert all(isinstance(r, QueueFull) for r in results[3:])
    assert all(j.state is JobState.SHED for j in jobs[3:])
    assert results[3].depth == results[3].limit == 3
    assert results[3].t == 3.0
    assert len(sched.shed) == 2
    assert "queue full" in str(results[3])


def test_requeue_bypasses_the_bound():
    sched = GangScheduler("fifo", max_depth=1)
    submit_all(sched, [mkjob(0)])
    retry = mkjob(1)
    sched.requeue(retry, now=1.0)     # a crashed job's retry is never shed
    assert sched.depth == 2
    assert retry.state is JobState.QUEUED


# ------------------------------------------------- gangs and backfill
def test_gang_blocks_until_gpus_free_atomically():
    fleet = GpuFleet(4)
    sched = GangScheduler("fifo")
    gang = mkjob(0, gpus=4)
    fleet.acquire(99, 2)              # half the fleet is busy
    submit_all(sched, [gang])
    assert sched.select(fleet, [(5.0, 2)], now=0.0) == []
    assert gang.state is JobState.QUEUED
    fleet.release(99)
    assert sched.select(fleet, [], now=5.0) == [gang]
    assert gang.state is JobState.SCHEDULED


def test_backfill_fills_hole_without_delaying_reservation():
    fleet = GpuFleet(4)
    fleet.acquire(99, 2)              # 2 free; running job ends at t=10
    running = [(10.0, 2)]
    sched = GangScheduler("fifo")
    gang = mkjob(0, gpus=4, est=1.0, arrival=0.0)
    short = mkjob(1, gpus=1, est=5.0, arrival=1.0)    # fits, ends t<=10
    long = mkjob(2, gpus=1, est=20.0, arrival=2.0)    # would end t=20>10
    wide = mkjob(3, gpus=3, est=1.0, arrival=3.0)     # does not fit now
    submit_all(sched, [gang, short, long, wide])

    started = sched.select(fleet, running, now=0.0)
    # the head gang waits on its reservation (t=10); only the short
    # narrow job backfills — the ones that would delay the gang do not
    assert started == [short]
    assert short.state is JobState.SCHEDULED
    assert sched.backfills == 1
    assert {j.index for j in sched.queue} == {0, 2, 3}
    assert ("backfilled" in [ev for _, ev in short.log])


def test_no_backfill_keeps_strict_order_behind_a_gang():
    fleet = GpuFleet(4)
    fleet.acquire(99, 2)
    sched = GangScheduler("fifo", backfill=False)
    gang = mkjob(0, gpus=4)
    small = mkjob(1, gpus=1, est=0.1, arrival=1.0)
    submit_all(sched, [gang, small])
    # head-of-line gang blocks everything with backfill disabled
    assert sched.select(fleet, [(10.0, 2)], now=0.0) == []
    assert sched.backfills == 0
    assert sched.depth == 2


def test_multiple_small_jobs_start_together_when_they_fit():
    fleet = GpuFleet(4)
    sched = GangScheduler("fifo")
    jobs = [mkjob(i, gpus=1) for i in range(6)]
    submit_all(sched, jobs)
    started = sched.select(fleet, [], now=0.0)
    assert [j.index for j in started] == [0, 1, 2, 3]
    assert sched.depth == 2
