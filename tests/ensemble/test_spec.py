"""EnsembleSpec expansion: determinism, sub-seed independence, and the
standalone reproducibility of any member."""
import numpy as np
import pytest

from repro.api import Experiment, RunSpec
from repro.ensemble import (
    EnsembleSpec,
    ICNoise,
    ParamJitter,
    default_perturbations,
    member_seed,
    parse_perturbation,
)

BASE = RunSpec(workload="vortex", steps=1, nx=16, ny=16, nz=8)


def test_expansion_is_deterministic_and_pure():
    es = EnsembleSpec(base=BASE, members=5, seed=42)
    first = es.expand()
    second = es.expand()
    assert len(first) == 5
    assert [s.seed for s in first] == [s.seed for s in second]
    assert [s.workload_kwargs for s in first] == [
        s.workload_kwargs for s in second]
    # expansion never mutates the base
    assert BASE.seed is None and BASE.workload_kwargs == {}


def test_control_member_is_the_unperturbed_base():
    specs = EnsembleSpec(base=BASE, members=4, seed=1).expand()
    assert specs[0].seed is None
    assert specs[0].workload_kwargs == {}
    assert specs[0].spec_hash() == BASE.spec_hash()
    for m in (1, 2, 3):
        assert specs[m].seed is not None
        assert specs[m].spec_hash() != BASE.spec_hash()


def test_no_control_perturbs_member_zero():
    specs = EnsembleSpec(base=BASE, members=2, seed=1,
                         control=False).expand()
    assert specs[0].seed is not None
    assert specs[0].spec_hash() != BASE.spec_hash()


def test_members_are_pairwise_distinct():
    specs = EnsembleSpec(base=BASE, members=6, seed=9).expand()
    hashes = [s.spec_hash() for s in specs]
    assert len(set(hashes)) == 6


def test_different_ensemble_seeds_give_different_members():
    a = EnsembleSpec(base=BASE, members=3, seed=1).expand()
    b = EnsembleSpec(base=BASE, members=3, seed=2).expand()
    assert a[1].spec_hash() != b[1].spec_hash()


def test_member_sub_seeds_are_independent():
    # growing the ensemble or renaming a perturbation never changes what
    # an existing member draws
    assert member_seed(7, 3, "ic-noise") == member_seed(7, 3, "ic-noise")
    assert member_seed(7, 3, "ic-noise") != member_seed(7, 4, "ic-noise")
    assert member_seed(7, 3, "ic-noise") != member_seed(8, 3, "ic-noise")
    assert member_seed(7, 3, "ic-noise") != member_seed(7, 3, "jitter-vmax")


def test_member_reproduces_standalone_bitwise():
    # the expanded spec is self-contained: running it twice through the
    # ordinary facade gives bit-identical fields — the property member
    # retry and caching depend on
    spec = EnsembleSpec(base=BASE, members=3, seed=42).expand()[2]
    a = Experiment(spec).prepare().run()
    b = Experiment(spec).prepare().run()
    assert np.array_equal(a.state.rhotheta, b.state.rhotheta)
    assert np.array_equal(a.state.rhou, b.state.rhou)
    assert a.series == b.series


def test_param_jitter_writes_concrete_values():
    specs = EnsembleSpec(base=BASE, members=2, seed=0).expand()
    kwargs = specs[1].workload_kwargs
    assert isinstance(kwargs["vmax"], float) and kwargs["vmax"] > 0
    assert isinstance(kwargs["rmax"], float) and kwargs["rmax"] > 0


def test_param_jitter_respects_explicit_base_kwargs():
    base = RunSpec(workload="vortex", steps=1, nx=16, ny=16, nz=8,
                   workload_kwargs={"vmax": 30.0})
    spec = EnsembleSpec(base=base, members=2, seed=0).expand()[1]
    # lognormal sigma 0.1: the jittered value stays near the 30 override,
    # nowhere near the factory default of 15
    assert 20.0 < spec.workload_kwargs["vmax"] < 45.0


def test_default_catalogue_covers_every_workload():
    from repro.api import WORKLOADS

    for workload in WORKLOADS:
        perts = default_perturbations(workload)
        assert perts, workload
        assert any(isinstance(p, ICNoise) for p in perts)
    with pytest.raises(ValueError):
        default_perturbations("nope")


def test_jitter_of_unknown_parameter_is_an_error():
    es = EnsembleSpec(base=BASE, members=2, seed=0,
                      perturbations=(ParamJitter("j", key="nope"),))
    with pytest.raises(ValueError, match="jitterable"):
        es.expand()


def test_validation():
    with pytest.raises(ValueError):
        EnsembleSpec(base=BASE, members=0)
    with pytest.raises(ValueError):
        EnsembleSpec(base=RunSpec(workload="nope"))


# ------------------------------------------------------ CLI grammar
def test_parse_perturbation_grammar():
    p = parse_perturbation("ic")
    assert isinstance(p, ICNoise)
    assert p.theta_noise is None
    p = parse_perturbation("ic:0.5")
    assert p.theta_noise == 0.5 and p.wind_noise is None
    p = parse_perturbation("ic:0.5,0.2")
    assert (p.theta_noise, p.wind_noise) == (0.5, 0.2)
    j = parse_perturbation("vmax~0.15")
    assert isinstance(j, ParamJitter)
    assert (j.key, j.sigma) == ("vmax", 0.15)


@pytest.mark.parametrize("bad", ["", "~0.1", "vmax~", "wat"])
def test_parse_perturbation_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_perturbation(bad)
