"""`repro ensemble` CLI: report, JSON determinism, exit-code convention."""
import json

import pytest

from repro.cli import main

SMALL = ["--members", "3", "--steps", "2",
         "--nx", "16", "--ny", "16", "--nz", "8", "--gpus", "2"]


def test_text_report(capsys):
    rc = main(["ensemble", "vortex", *SMALL])
    out = capsys.readouterr().out
    assert rc == 0
    assert "vortex x 3 members" in out
    assert "coverage 1.000" in out
    assert "max_wind" in out


def test_json_output_is_deterministic(capsys):
    rc = main(["ensemble", "vortex", *SMALL, "--json"])
    first = capsys.readouterr().out
    assert rc == 0
    rc = main(["ensemble", "vortex", *SMALL, "--json"])
    second = capsys.readouterr().out
    assert rc == 0
    assert first == second
    payload = json.loads(first)
    assert payload["product"]["coverage"] == 1.0
    assert payload["ensemble"]["members"] == 3
    assert payload["members"] == {"0": "done", "1": "done", "2": "done"}


def test_lost_member_flags_exit_one(capsys):
    rc = main(["ensemble", "vortex", *SMALL,
               "--faults", "crash@2:x3", "--max-retries", "1", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["product"]["coverage"] == pytest.approx(2 / 3)
    assert payload["members"]["2"] == "evicted"


def test_crash_within_budget_still_exits_clean(capsys):
    rc = main(["ensemble", "vortex", *SMALL,
               "--faults", "crash@1", "--max-retries", "2", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["product"]["coverage"] == 1.0
    assert payload["service"]["retries"] >= 1


def test_explicit_perturbations(capsys):
    rc = main(["ensemble", "vortex", *SMALL,
               "--perturb", "ic:0.5", "--perturb", "vmax~0.15", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    described = payload["ensemble"]["perturbations"]
    assert len(described) == 2
    assert any("vmax" in d for d in described)


def test_bad_perturbation_is_a_usage_error(capsys):
    rc = main(["ensemble", "vortex", *SMALL, "--perturb", "wat"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "ensemble:" in err and "wat" in err


def test_trace_written(tmp_path, capsys):
    trace = tmp_path / "ens.json"
    rc = main(["ensemble", "vortex", *SMALL, "--trace", str(trace)])
    assert rc == 0
    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e.get("name", "").startswith("fold member")
               for e in events)
