"""EnsembleRunner end to end: determinism, fault tolerance, memory
release, and the online product against the offline reference."""
import numpy as np
import pytest

from repro.api import Experiment, RunSpec
from repro.ensemble import (
    EnsembleRunner,
    EnsembleSpec,
    OnlineReducer,
    member_contribution,
)
from repro.resilience.retry import RetryPolicy

SMALL = RunSpec(workload="vortex", steps=2, nx=16, ny=16, nz=8)


def _ensemble(members=4, seed=42):
    return EnsembleSpec(base=SMALL, members=members, seed=seed)


def _offline(spec, members, skipped=None):
    """The batch reference: run each surviving member standalone."""
    contributions = []
    for m, member_spec in enumerate(spec.expand()):
        if skipped and m in skipped:
            continue
        result = Experiment(member_spec).prepare().run()
        contributions.append(member_contribution(result, m))
    return OnlineReducer.batch(contributions, spec.members, skipped=skipped)


def _products_equal(a, b):
    assert (a.members_requested, a.members_reduced) == \
        (b.members_requested, b.members_reduced)
    assert a.skipped == b.skipped
    assert a.field_stats.keys() == b.field_stats.keys()
    for name in a.field_stats:
        for stat in ("mean", "spread"):
            assert np.array_equal(a.field_stats[name][stat],
                                  b.field_stats[name][stat]), (name, stat)
    assert a.scalar_stats == b.scalar_stats


def test_rerun_reproduces_the_product_bitwise():
    a = EnsembleRunner(_ensemble(), fleet=2).run()
    b = EnsembleRunner(_ensemble(), fleet=2).run()
    _products_equal(a.product, b.product)
    assert a.product.as_dict() == b.product.as_dict()
    assert a.member_states == b.member_states
    assert a.complete and a.product.coverage == 1.0


def test_fleet_width_cannot_change_the_product():
    # different fleets complete members in different orders; the reorder
    # buffer makes the fold sequence — hence the product — identical
    wide = EnsembleRunner(_ensemble(), fleet=4).run()
    narrow = EnsembleRunner(_ensemble(), fleet=1).run()
    _products_equal(wide.product, narrow.product)


def test_online_product_equals_offline_batch():
    spec = _ensemble(members=3)
    result = EnsembleRunner(spec, fleet=2).run()
    _products_equal(result.product, _offline(spec, 3))


def test_evicted_member_shrinks_coverage_not_the_forecast():
    spec = _ensemble(members=4)
    result = EnsembleRunner(spec, fleet=2, faults="crash@2:x3",
                            retry=RetryPolicy(max_retries=1)).run()
    assert result.member_states[2] == "evicted"
    assert not result.complete
    assert result.product.coverage == pytest.approx(3 / 4)
    assert set(result.product.skipped) == {2}
    assert result.product.skipped[2].startswith("evicted")
    # the shrunken product is exactly the batch reduction over survivors
    _products_equal(result.product,
                    _offline(spec, 4, skipped=dict(result.product.skipped)))


def test_crash_within_retry_budget_keeps_full_coverage():
    result = EnsembleRunner(_ensemble(), fleet=2, faults="crash@1",
                            retry=RetryPolicy(max_retries=2)).run()
    assert result.complete
    assert result.report.retries >= 1
    _products_equal(result.product, _offline(_ensemble(), 4))


def test_folded_members_are_released_from_service_memory():
    runner = EnsembleRunner(_ensemble(members=3), fleet=2)
    result = runner.run()
    assert result.product.members_reduced == 3
    # fold-then-release: the executed-results shortcut holds nothing once
    # every member has been folded
    assert runner.service._computed == {}
    for job in runner.service.jobs:
        assert job.result is None


def test_report_jobs_carry_member_metadata():
    result = EnsembleRunner(_ensemble(members=3), fleet=2,
                            execute=False).run()
    members = [j["member"] for j in result.report.jobs]
    assert sorted(members) == [0, 1, 2]


def test_modeled_only_run_skips_every_member():
    # --no-execute style runs produce no states to reduce; the product
    # says so instead of inventing a forecast
    result = EnsembleRunner(_ensemble(members=3), fleet=2,
                            execute=False).run()
    assert result.product.members_reduced == 0
    assert result.product.coverage == 0.0
    assert set(result.product.skipped) == {0, 1, 2}


def test_result_as_dict_and_render():
    import json

    result = EnsembleRunner(_ensemble(members=2), fleet=2).run()
    d = result.as_dict()
    json.dumps(d)
    assert d["product"]["coverage"] == 1.0
    assert d["members"] == {"0": "done", "1": "done"}
    text = result.render()
    assert "vortex x 2 members" in text
    assert "coverage 1.000" in text
