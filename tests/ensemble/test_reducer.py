"""OnlineReducer: bitwise order invariance, online == offline, coverage."""
import itertools

import numpy as np
import pytest

from repro.ensemble import Contribution, OnlineReducer


def _contribution(member, rng):
    return Contribution(
        member=member,
        fields={
            "rho": rng.normal(size=(4, 3, 2)),
            "track.max_wind": rng.normal(size=5),
        },
        scalars={"max_wind": float(rng.normal(loc=20.0)),
                 "total_mass": float(rng.normal(loc=1e9))},
        series={"t": [1, 2], "max_wind": [1.0, 2.0 + member]},
    )


def _members(n, seed=0):
    rng = np.random.default_rng(seed)
    return [_contribution(m, rng) for m in range(n)]


def _products_equal(a, b):
    assert a.members_requested == b.members_requested
    assert a.members_reduced == b.members_reduced
    assert a.skipped == b.skipped
    assert a.field_stats.keys() == b.field_stats.keys()
    for name in a.field_stats:
        for stat in ("mean", "spread"):
            assert np.array_equal(a.field_stats[name][stat],
                                  b.field_stats[name][stat]), (name, stat)
    assert a.scalar_stats == b.scalar_stats
    assert a.tracks == b.tracks


def test_online_equals_offline_bitwise():
    members = _members(6)
    online = OnlineReducer(6)
    for c in members:
        online.fold(c.member, c)
    _products_equal(online.finalize(), OnlineReducer.batch(members, 6))


def test_completion_order_cannot_change_the_product():
    # floating-point folding is order-dependent; the reorder buffer makes
    # every completion order perform the identical fold sequence
    members = _members(4)
    reference = OnlineReducer.batch(members, 4)
    for order in itertools.permutations(members):
        red = OnlineReducer(4)
        for c in order:
            red.fold(c.member, c)
        _products_equal(red.finalize(), reference)


def test_skip_files_a_hole_so_the_buffer_drains():
    members = _members(5)
    survivors = [c for c in members if c.member != 2]
    # member 2 dies *after* later members already completed out of order
    red = OnlineReducer(5)
    red.fold(4, members[4])
    red.fold(3, members[3])
    assert red.n_reduced == 0  # parked behind the member-2 hole
    red.fold(0, members[0])
    red.fold(1, members[1])
    assert red.n_reduced == 2
    red.skip(2, "evicted")
    assert red.n_reduced == 4
    product = red.finalize()
    assert product.coverage == pytest.approx(4 / 5)
    assert product.skipped == {2: "evicted"}
    _products_equal(product, OnlineReducer.batch(
        survivors, 5, skipped={2: "evicted"}))


def test_fold_is_idempotent_per_member():
    members = _members(3)
    red = OnlineReducer(3)
    for c in members:
        red.fold(c.member, c)
    red.fold(1, members[1])  # a retried member reporting twice is ignored
    red.skip(1, "late")
    _products_equal(red.finalize(), OnlineReducer.batch(members, 3))


def test_welford_matches_numpy_moments():
    members = _members(8)
    product = OnlineReducer.batch(members, 8)
    stack = np.stack([c.fields["rho"] for c in members])
    np.testing.assert_allclose(product.field_stats["rho"]["mean"],
                               stack.mean(axis=0), rtol=1e-12)
    np.testing.assert_allclose(product.field_stats["rho"]["spread"],
                               stack.std(axis=0, ddof=1), rtol=1e-10)


def test_single_member_has_zero_spread():
    product = OnlineReducer.batch(_members(1), 1)
    assert product.coverage == 1.0
    assert not product.field_stats["rho"]["spread"].any()


def test_scalar_percentiles_and_values():
    product = OnlineReducer.batch(_members(5), 5)
    st = product.scalar_stats["max_wind"]
    assert len(st["values"]) == 5
    assert st["min"] <= st["p10"] <= st["p50"] <= st["p90"] <= st["max"]
    assert st["mean"] == pytest.approx(sum(st["values"]) / 5)


def test_member_bounds_and_validation():
    red = OnlineReducer(2)
    with pytest.raises(ValueError):
        red.fold(2, _members(3)[2])
    with pytest.raises(ValueError):
        red.skip(-1)
    with pytest.raises(ValueError):
        OnlineReducer(0)


def test_as_dict_is_json_shaped():
    import json

    product = OnlineReducer.batch(_members(3), 4, skipped={3: "shed"})
    d = product.as_dict()
    json.dumps(d)  # no ndarray leaks
    assert d["coverage"] == pytest.approx(3 / 4)
    assert d["skipped"] == {"3": "shed"}
    assert set(d["fields"]["rho"]) == {"mean_rms", "spread_rms",
                                       "spread_max"}


def test_render_mentions_coverage_and_skips():
    text = OnlineReducer.batch(_members(3), 4,
                               skipped={3: "evicted"}).render()
    assert "3/4 members reduced" in text
    assert "coverage 0.750" in text
    assert "member 3: evicted" in text
