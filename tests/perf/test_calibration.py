"""Calibration anchors: the cost model must land on the paper's measured
numbers.  These tests pin the reproduction's headline claims; everything
else (scaling, breakdowns, projections) is model output validated in the
benchmarks."""
import pytest

from repro.gpu.spec import Precision, TESLA_S1070
from repro.perf.costmodel import (
    ASUCA_KERNELS,
    ROOFLINE_KERNELS,
    asuca_step_cost,
    cpu_step_time,
    launch_schedule,
)


def test_single_gpu_single_precision_gflops():
    """Paper: 44.3 GFlops SP on 320x256x48 (within 5%)."""
    c = asuca_step_cost(320, 256, 48)
    assert c.gflops == pytest.approx(44.3, rel=0.05)


def test_single_gpu_double_precision_gflops():
    """Paper: 14.6 GFlops DP on 320x128x48; DP ~30% of SP."""
    c_dp = asuca_step_cost(320, 128, 48, precision=Precision.DOUBLE)
    assert c_dp.gflops == pytest.approx(14.6, rel=0.07)
    c_sp = asuca_step_cost(320, 256, 48)
    assert 0.25 < c_dp.gflops / c_sp.gflops < 0.40


def test_over_80_fold_speedup():
    """Paper title: GPU SP is 83.4x one Opteron core running the Fortran
    in DP ('over 80-fold')."""
    t_cpu = cpu_step_time(320, 256, 48)
    t_gpu = asuca_step_cost(320, 256, 48).total_time
    assert t_cpu / t_gpu == pytest.approx(83.4, rel=0.07)
    assert t_cpu / t_gpu > 80.0


def test_26x_dp_speedup():
    """Paper: DP-vs-DP speedup 26.3x."""
    t_cpu = cpu_step_time(320, 256, 48)
    t_gpu = asuca_step_cost(320, 256, 48, precision=Precision.DOUBLE).total_time
    assert t_cpu / t_gpu == pytest.approx(26.3, rel=0.10)


def test_warm_rain_one_percent():
    """Paper: the warm-rain kernel 'spends only 1.0% GPU time'."""
    c = asuca_step_cost(320, 256, 48)
    assert 0.005 < c.time_fraction("warm_rain") < 0.02


def test_cpu_sustained_half_gflop():
    """The implied Fortran sustained rate is 44.3/83.4 ~ 0.53 GFlops."""
    t_cpu = cpu_step_time(320, 256, 48)
    c = asuca_step_cost(320, 256, 48)
    assert c.total_flops / t_cpu / 1e9 == pytest.approx(0.53, rel=0.1)


def test_step_flops_match_fig11_implication():
    """15 TFlops / 528 GPUs * 0.988 s => ~2.8e10 flop per GPU per step."""
    c = asuca_step_cost(320, 256, 48)
    assert c.total_flops == pytest.approx(2.8e10, rel=0.1)


def test_performance_rises_with_grid_size():
    """Fig. 4 shape: GFlops increase monotonically with ny and saturate."""
    vals = [asuca_step_cost(320, ny, 48).gflops for ny in (32, 64, 128, 192, 256)]
    assert all(b > a for a, b in zip(vals, vals[1:]))
    # saturating: the last increment is much smaller than the first
    assert (vals[-1] - vals[-2]) < 0.3 * (vals[1] - vals[0])


def test_roofline_kernel_ordering():
    """Fig. 5: coordinate transform slowest; warm rain fastest and the
    only compute-bound kernel; intensities span ~0.08 to ~10."""
    perfs = {}
    intensities = {}
    n = 320 * 256 * 48
    for label, name in ROOFLINE_KERNELS:
        k = ASUCA_KERNELS[name]
        t = k.duration(n, TESLA_S1070, Precision.SINGLE)
        perfs[name] = k.cost.flops(n) / t
        intensities[name] = k.cost.intensity(Precision.SINGLE)
    assert perfs["coord_transform"] < perfs["pgf_x"] < perfs["advection"]
    assert perfs["warm_rain"] == max(perfs.values())
    assert intensities["coord_transform"] == pytest.approx(1 / 12, rel=1e-6)
    assert intensities["warm_rain"] > 6.75  # beyond the S1070 SP ridge


def test_launch_schedule_structure():
    sched = dict(launch_schedule(ns=8))
    nsub = 1 + 4 + 8
    assert sched["helmholtz"] == nsub
    assert sched["pgf_x"] == nsub
    assert sched["warm_rain"] == 1
    assert sched["advection"] == 3 * 4 + 3 * 13
    # every kernel in the schedule exists in the table
    for name in sched:
        assert name in ASUCA_KERNELS


def test_kij_ordering_degrades_everything():
    """Sec. IV-A-1: keeping the CPU's kij ordering on the GPU is ruinous."""
    from repro.gpu.coalescing import ArrayOrder

    good = asuca_step_cost(320, 256, 48)
    bad = asuca_step_cost(320, 256, 48, order=ArrayOrder.KIJ)
    assert bad.gflops < 0.35 * good.gflops
