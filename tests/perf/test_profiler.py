"""Tests of the phase profiler."""
import time

import pytest

from repro.profiling import PhaseTimer, profile_phase, use_timer
from repro.workloads.warm_bubble import make_warm_bubble_case


def test_noop_without_active_timer():
    with profile_phase("anything"):
        x = 1 + 1
    assert x == 2  # nothing recorded anywhere, nothing raised


def test_basic_accumulation():
    t = PhaseTimer()
    with use_timer(t):
        with profile_phase("a"):
            time.sleep(0.01)
        with profile_phase("a"):
            pass
        with profile_phase("b"):
            pass
    assert t.calls["a"] == 2 and t.calls["b"] == 1
    assert t.seconds["a"] >= 0.01
    assert t.total() == pytest.approx(sum(t.seconds.values()))
    assert 0.0 <= t.fraction("b") <= 1.0


def test_nesting_lifo():
    outer, inner = PhaseTimer(), PhaseTimer()
    with use_timer(outer):
        with profile_phase("x"):
            pass
        with use_timer(inner):
            with profile_phase("y"):
                pass
        with profile_phase("z"):
            pass
    assert "y" in inner.seconds and "y" not in outer.seconds
    assert "x" in outer.seconds and "z" in outer.seconds


def test_report_and_reset():
    t = PhaseTimer()
    with use_timer(t):
        with profile_phase("phase_one"):
            pass
    rep = t.report()
    assert "phase_one" in rep and "total" in rep
    t.reset()
    assert t.total() == 0.0


def test_model_phases_recorded():
    """A real model step populates the instrumented phases, and the
    warm-rain share is small — the paper's '1.0% GPU time' observation
    holds for the NumPy implementation too."""
    case = make_warm_bubble_case(nx=12, ny=12, nz=12, dt=4.0)
    t = PhaseTimer()
    with use_timer(t):
        case.run(3)
    for phase in ("advect_momentum", "advect_theta", "advect_moisture",
                  "acoustic_substep", "helmholtz_solve", "physics_warm_rain"):
        assert t.calls[phase] > 0, phase
    assert t.fraction("physics_warm_rain") < 0.1


def test_exception_still_charges():
    t = PhaseTimer()
    with use_timer(t):
        with pytest.raises(ValueError):
            with profile_phase("boom"):
                raise ValueError("x")
    assert t.calls["boom"] == 1


def test_use_timer_reentrant_same_timer():
    """Nesting use_timer with the *same* timer charges each phase exactly
    once — the innermost activation wins, not both stack entries."""
    t = PhaseTimer()
    with use_timer(t):
        with use_timer(t):
            with profile_phase("inner"):
                pass
        with profile_phase("outer"):
            pass
    assert t.calls["inner"] == 1
    assert t.calls["outer"] == 1


def test_use_timer_restores_outer_after_inner_exits():
    """Three-deep nesting: after the innermost block exits, charges go
    back to the next timer on the stack (LIFO restore)."""
    a, b, c = PhaseTimer(), PhaseTimer(), PhaseTimer()
    with use_timer(a):
        with use_timer(b):
            with use_timer(c):
                with profile_phase("deep"):
                    pass
            with profile_phase("mid"):
                pass
        with profile_phase("top"):
            pass
    assert c.calls["deep"] == 1 and "deep" not in b.calls and "deep" not in a.calls
    assert b.calls["mid"] == 1 and "mid" not in a.calls and "mid" not in c.calls
    assert a.calls["top"] == 1 and "top" not in b.calls
