"""Validate the analytic kernel cost table against FLOPs *measured* from
the real NumPy kernels with the instrumented-array counter (the promise
of DESIGN.md: "analytic per-kernel cost models validated against it")."""
import numpy as np
import pytest

from repro.core.helmholtz import HELMHOLTZ_FLOPS_PER_POINT
from repro.core.tridiag import TRIDIAG_FLOPS_PER_POINT, thomas_solve
from repro.core.pressure import EOS_FLOPS_PER_POINT, eos_pressure
from repro.core.grid import make_grid
from repro.perf.costmodel import ASUCA_KERNELS, launch_schedule
from repro.perf.counting import FlopCounter


@pytest.fixture
def counter():
    return FlopCounter()


def test_thomas_flops_per_point(counter):
    n = 64
    rng = np.random.default_rng(0)
    sub = counter.wrap(rng.uniform(-1, 1, n))
    sup = counter.wrap(rng.uniform(-1, 1, n))
    diag = counter.wrap(3.0 + np.abs(sub.view(np.ndarray)) + np.abs(sup.view(np.ndarray)))
    rhs = counter.wrap(rng.normal(size=n))
    counter.reset()
    thomas_solve(sub, diag, sup, rhs)
    measured = counter.flops / n
    # forward sweep (5 weighted ops incl. divides) + back substitution (2)
    assert 0.5 * TRIDIAG_FLOPS_PER_POINT < measured < 3.0 * TRIDIAG_FLOPS_PER_POINT


def test_eos_flops_per_point(counter):
    g = make_grid(4, 4, 4, 100.0, 100.0, 1000.0)
    rhotheta = counter.wrap(np.full(g.shape_c, 300.0))
    counter.reset()
    eos_pressure(rhotheta, g)
    measured = counter.flops / rhotheta.size
    # division + power(16) + multiplies; the table's "eos_pressure" kernel
    # carries 20 flops/pt
    table = ASUCA_KERNELS["eos_pressure"].cost.flops_per_point
    assert 0.5 * table < measured < 2.5 * table
    assert measured > EOS_FLOPS_PER_POINT  # the constant is a lower bound


def test_helmholtz_assembly_plus_solve_cost():
    """The table's 40 flops/pt for the Helmholtz kernel covers assembly
    (~20 declared in core.helmholtz) plus the Thomas solve (~8) plus the
    RHS construction — the pieces must bracket it."""
    table = ASUCA_KERNELS["helmholtz"].cost.flops_per_point
    assert HELMHOLTZ_FLOPS_PER_POINT + TRIDIAG_FLOPS_PER_POINT <= table
    assert table <= 3 * (HELMHOLTZ_FLOPS_PER_POINT + TRIDIAG_FLOPS_PER_POINT)


def test_step_flops_scale_linearly_with_points():
    from repro.perf.costmodel import asuca_step_cost

    a = asuca_step_cost(320, 64, 48)
    b = asuca_step_cost(320, 128, 48)
    assert b.total_flops == pytest.approx(2 * a.total_flops, rel=1e-12)
    assert b.flops_per_point == pytest.approx(a.flops_per_point, rel=1e-12)


def test_schedule_flops_budget_consistent():
    """Sum over the schedule equals the aggregate the scaling model uses."""
    from repro.perf.costmodel import asuca_step_cost

    n = 320 * 256 * 48
    manual = sum(
        count * ASUCA_KERNELS[k].cost.flops_per_point * n
        for k, count in launch_schedule()
    )
    assert asuca_step_cost(320, 256, 48).total_flops == pytest.approx(manual)


def test_warm_rain_measured_is_transcendental_heavy(counter):
    """Run the real Kessler step under the counter: its flops/point are an
    order of magnitude above the advection's per-variable cost, supporting
    the Fig. 5 placement."""
    from repro.core.reference import make_reference_state
    from repro.core.state import state_from_reference
    from repro.physics.kessler import KesslerConfig, kessler_step
    from repro.workloads.sounding import tropospheric_sounding

    g = make_grid(6, 6, 6, 1000.0, 1000.0, 6000.0)
    ref = make_reference_state(g, tropospheric_sounding())
    st = state_from_reference(g, ref)
    st.q["qv"][...] = 0.02 * st.rho     # supersaturated: all branches run
    st.q["qc"][...] = 2e-3 * st.rho
    st.q["qr"][...] = 1e-3 * st.rho
    for name in ("rho", "rhotheta"):
        st.set(name, counter.wrap(st.get(name)))
    for name in list(st.q):
        st.q[name] = counter.wrap(st.q[name])
    counter.reset()
    kessler_step(st, ref, 5.0, KesslerConfig(sedimentation=False))
    per_point = counter.flops / g.n_interior_cells
    assert per_point > 100.0
