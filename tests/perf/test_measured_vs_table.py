"""Measured counts vs the hand-entered cost table, kernel by kernel.

The live-roofline drift check (``repro doctor --roofline``) only has
value if the accounting kernels and the cost table actually agree on an
unmodified tree.  This sweep measures every bound kernel with the
counting hook at two grid sizes and asserts the measured flops and
streamed traffic land inside the shared drift bands — exactly the
condition under which the doctor emits no ROOF01/ROOF02 finding."""
import pytest

from repro.gpu.counters import CountingHook, bytes_drift, flops_drift
from repro.gpu.spec import Precision
from repro.perf.costmodel import ASUCA_KERNELS
from repro.workloads.shear_layer import make_shear_layer_case

GRIDS = [(16, 16, 12), (24, 20, 16)]


@pytest.fixture(scope="module", params=GRIDS, ids=lambda g: "x".join(map(str, g)))
def hook(request):
    nx, ny, nz = request.param
    case = make_shear_layer_case(nx=nx, ny=ny, nz=nz)
    h = CountingHook(case.model.grid, case.model.ref)
    assert h.begin_step(0, case.state)
    return h


KERNELS = sorted(ASUCA_KERNELS)


@pytest.mark.parametrize("name", KERNELS)
def test_measured_flops_within_band(hook, name):
    pp = hook.per_point(name)
    assert pp is not None, f"{name} has no accounting binding"
    table = ASUCA_KERNELS[name].cost.flops_per_point
    ratio = flops_drift(name, pp["flops"], table)
    assert ratio is None, (
        f"{name}: measured {pp['flops']:.2f} flops/pt vs table {table} "
        f"(ratio {ratio})")


@pytest.mark.parametrize("name", KERNELS)
def test_measured_traffic_within_band(hook, name):
    pp = hook.per_point(name)
    assert pp is not None, f"{name} has no accounting binding"
    cost = ASUCA_KERNELS[name].cost
    itemsize = Precision.SINGLE.itemsize
    measured = (pp["reads"] + pp["writes"]) * itemsize
    table = (cost.reads_per_point + cost.writes_per_point) * itemsize
    ratio = bytes_drift(name, measured, table)
    assert ratio is None, (
        f"{name}: streamed {measured:.1f} B/pt vs table {table:.1f} "
        f"(ratio {ratio})")


def test_every_cost_table_kernel_is_bound(hook):
    """A kernel added to the cost table without an accounting binding
    would silently fall out of the measured roofline (ROOF03)."""
    assert set(ASUCA_KERNELS) <= set(hook.kernels)
    assert set(ASUCA_KERNELS) <= set(hook._per_point)
