"""Tests of the instrumented-array FLOP counter (PAPI substitute)."""
import warnings

import numpy as np
import pytest

from repro.perf.counting import CountingArray, FlopCounter, _WARNED_UFUNCS


@pytest.fixture
def counter():
    return FlopCounter()


def test_basic_arithmetic(counter):
    a = counter.wrap(np.ones(100))
    b = a + a
    assert counter.flops == 100
    c = b * 2.0
    assert counter.flops == 200
    assert isinstance(c, CountingArray)


def test_division_weighted(counter):
    a = counter.wrap(np.ones(10))
    _ = a / 3.0
    assert counter.flops == 40  # divide weight 4


def test_transcendental_weights(counter):
    a = counter.wrap(np.ones(10))
    _ = np.exp(a)
    assert counter.flops == 80
    _ = np.sqrt(a)
    assert counter.flops == 120


def test_comparisons_free(counter):
    a = counter.wrap(np.ones(50))
    _ = a > 0.5
    assert counter.flops == 0


def test_propagation_through_results(counter):
    a = counter.wrap(np.ones(10))
    b = a + 1.0          # 10
    c = b * b            # 10
    d = np.maximum(c, a) # 10
    assert counter.flops == 30
    assert isinstance(d, CountingArray)


def test_inplace_out(counter):
    a = counter.wrap(np.ones(10))
    out = counter.wrap(np.zeros(10))
    np.add(a, a, out=out)
    assert counter.flops == 10
    np.testing.assert_array_equal(out.view(np.ndarray), 2.0 * np.ones(10))


def test_reduce(counter):
    a = counter.wrap(np.ones(100))
    s = a.sum()
    assert counter.flops == 100
    assert float(s) == 100.0


def test_traffic_counted(counter):
    a = counter.wrap(np.ones(100))
    _ = a + a
    assert counter.elements_read == 200
    assert counter.elements_written == 100


def test_broadcasting_counts_output_size(counter):
    a = counter.wrap(np.ones((10, 10)))
    _ = a + np.ones(10)
    assert counter.flops == 100


def test_reset(counter):
    a = counter.wrap(np.ones(10))
    _ = a + a
    counter.reset()
    assert counter.flops == 0


def test_results_bit_identical(counter):
    """Wrapping must not perturb numerics at all."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=1000)
    plain = np.exp(x) + np.sqrt(np.abs(x)) / (1.0 + x * x)
    wrapped = counter.wrap(x.copy())
    instrumented = np.exp(wrapped) + np.sqrt(np.abs(wrapped)) / (1.0 + wrapped * wrapped)
    np.testing.assert_array_equal(plain, instrumented.view(np.ndarray))


def test_matmul_scales_with_contracted_extent(counter):
    """(n, k) @ (k, m) is 2k flops (k multiply-add pairs) per output
    element, not a flat per-element weight."""
    a = counter.wrap(np.ones((4, 5)))
    _ = a @ np.ones((5, 6))
    assert counter.flops == 2 * 5 * (4 * 6)


def test_outer_method_counts_output_size(counter):
    a = counter.wrap(np.ones(7))
    r = np.multiply.outer(a, np.ones(9))
    assert r.shape == (7, 9)
    assert counter.flops == 63
    assert isinstance(r, CountingArray)


def test_unknown_ufunc_warns_once(counter):
    """An unweighted ufunc is charged at 1 flop/element with a single
    RuntimeWarning per session, then stays silent."""
    _WARNED_UFUNCS.discard("ldexp")
    a = counter.wrap(np.ones(10))
    e = np.full(10, 2, dtype=np.int64)
    with pytest.warns(RuntimeWarning, match="ldexp"):
        _ = np.ldexp(a, e)
    assert counter.flops == 10
    assert "ldexp" in counter.unknown_ufuncs
    with warnings.catch_warnings():
        warnings.simplefilter("error")   # a second warning would raise
        _ = np.ldexp(a, e)
    assert counter.flops == 20


def test_measure_real_kernel(counter):
    """Measure the Koren-limited face flux on a small grid; the count must
    land near the analytic ADVECTION_FLOPS_PER_FACE estimate."""
    from repro.core.advection import ADVECTION_FLOPS_PER_FACE, limited_face_flux

    n = 64
    rng = np.random.default_rng(1)
    phi = counter.wrap(rng.normal(size=n))
    flux = counter.wrap(rng.normal(size=n - 1))
    _ = limited_face_flux(phi, flux, axis=0)
    per_face = counter.flops / (n - 3)
    assert 0.5 * ADVECTION_FLOPS_PER_FACE < per_face < 2.5 * ADVECTION_FLOPS_PER_FACE
