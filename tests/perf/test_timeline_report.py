"""Tests of timeline summarization and report formatting."""
import pytest

from repro.gpu.device import GPUDevice
from repro.gpu.spec import TESLA_S1070
from repro.perf.report import ComparisonReport, format_table
from repro.perf.timeline import busy_by_name, gantt_text, summarize


@pytest.fixture
def dev():
    d = GPUDevice(TESLA_S1070)
    s1, s2 = d.create_stream(), d.create_stream()
    d.schedule("k1", "kernel", s1, 2.0, flops=1e9, tag="compute")
    d.schedule("c1", "h2d", s2, 1.0, bytes_moved=1e6, tag="gpu_cpu")
    d.schedule("m1", "mpi", s2, 3.0, tag="mpi")
    d.schedule("k1", "kernel", s1, 1.0, tag="compute")
    return d


def test_summarize_busy_times(dev):
    s = summarize(dev)
    assert s.busy_by_kind == {"kernel": 3.0, "h2d": 1.0, "mpi": 3.0}
    assert s.busy_by_tag["compute"] == 3.0
    assert s.op_count == 4
    assert s.makespan == pytest.approx(4.0)


def test_summarize_overlap_fraction(dev):
    s = summarize(dev)
    # k1 [0,2] overlaps h2d [0,1] and mpi [1,4]; k2 [2,3] overlaps mpi
    # => concurrency >= 2 during [0,3] of the 4-unit makespan
    assert s.overlap_fraction == pytest.approx(3.0 / 4.0)


def test_summarize_empty():
    s = summarize(GPUDevice(TESLA_S1070))
    assert s.makespan == 0.0 and s.overlap_fraction == 0.0


def test_busy_by_name(dev):
    by = busy_by_name(dev)
    assert by["k1"] == 3.0
    assert busy_by_name(dev, prefix="k") == {"k1": 3.0}


def test_gantt_text(dev):
    txt = gantt_text(dev)
    lines = txt.splitlines()
    assert "timeline" in lines[0]
    assert len(lines) == 5
    assert all("|" in ln for ln in lines[1:])
    assert gantt_text(GPUDevice(TESLA_S1070)) == "(empty timeline)"


# ------------------------------------------------------------------ report
def test_format_table_alignment():
    t = format_table(["a", "quantity"], [[1, 2.5], [30, 0.001]], title="T")
    lines = t.splitlines()
    assert lines[0] == "T"
    assert "quantity" in lines[1]
    assert len(set(len(ln) for ln in lines[1:])) == 1  # aligned rows


def test_comparison_report_pass_fail():
    rep = ComparisonReport("exp")
    rep.add("good", 100.0, 103.0, rel_tol=0.05)
    assert rep.all_within_tolerance()
    rep.add("bad", 100.0, 150.0, rel_tol=0.05)
    assert not rep.all_within_tolerance()
    text = rep.render()
    assert "NO" in text and "yes" in text
    assert "exp" in text


def test_comparison_report_zero_reference():
    rep = ComparisonReport("z")
    rep.add("zero paper value", 0.0, 5.0)
    assert rep.all_within_tolerance()  # zero reference: informational only
    assert "nan" in rep.render()
