"""Tests of the three paper workloads (mountain wave, warm bubble,
synthetic real case) and the soundings."""
import numpy as np
import pytest

from repro import constants as c
from repro.workloads.mountain_wave import linear_wave_w_scale, make_mountain_wave_case
from repro.workloads.real_case import make_real_case
from repro.workloads.sounding import (
    constant_stability_sounding,
    isentropic_sounding,
    isothermal_sounding,
    tropospheric_sounding,
)
from repro.workloads.warm_bubble import make_warm_bubble_case


# ---------------------------------------------------------------- soundings
def test_constant_stability_brunt_vaisala():
    """N^2 = (g / theta) d(theta)/dz must equal the requested value."""
    n_bv = 0.012
    th = constant_stability_sounding(290.0, n_bv)
    z = np.linspace(0.0, 10000.0, 101)
    theta = th(z)
    dthdz = np.gradient(theta, z)
    n2 = c.G / theta * dthdz
    np.testing.assert_allclose(n2, n_bv ** 2, rtol=1e-3)


def test_isothermal_temperature_constant():
    t0 = 250.0
    th = isothermal_sounding(t0)
    from repro.core.reference import hydrostatic_exner

    z, pi = hydrostatic_exner(th, 8000.0)
    T = th(z) * pi
    np.testing.assert_allclose(T, t0, rtol=1e-4)


def test_tropospheric_kink():
    th = tropospheric_sounding(z_tropopause=11000.0)
    z = np.array([0.0, 5000.0, 11000.0, 15000.0])
    theta = th(z)
    assert theta[1] - theta[0] < theta[3] - theta[2]  # stratosphere stiffer


def test_isentropic_flat():
    th = isentropic_sounding(310.0)
    assert np.all(th(np.linspace(0, 5000, 11)) == 310.0)


# ------------------------------------------------------------ mountain wave
def test_mountain_wave_case_structure():
    case = make_mountain_wave_case(nx=24, ny=8, nz=12, dx=2000.0, ztop=12000.0)
    assert not case.grid.is_flat()
    # mountain peak near the domain centre
    h = case.grid.halo
    zs = case.grid.zs[h : h + case.grid.nx, h : h + case.grid.ny]
    peak_i = np.unravel_index(np.argmax(zs), zs.shape)[0]
    assert abs(peak_i - case.grid.nx // 2) <= 1
    # uniform initial wind
    u, v, w = case.state.velocities()
    np.testing.assert_allclose(u[case.grid.isl_u], case.u0, rtol=1e-12)
    assert np.all(w == 0.0)


def test_mountain_wave_develops():
    case = make_mountain_wave_case(nx=24, ny=8, nz=12, dx=2000.0,
                                   ztop=12000.0, dt=4.0)
    case.run(25)
    d = case.model.diagnostics(case.state)
    scale = linear_wave_w_scale(case.u0, case.mountain_height, case.half_width)
    assert 0.02 * scale < d.max_w < 5.0 * scale
    assert np.isfinite(d.max_wind)


def test_linear_scale_helper():
    assert linear_wave_w_scale(10.0, 300.0, 4000.0) == pytest.approx(0.75)


# -------------------------------------------------------------- warm bubble
def test_warm_bubble_initialization():
    case = make_warm_bubble_case(nx=12, ny=12, nz=12)
    g = case.grid
    theta = case.state.theta_m()
    # the bubble is warm relative to its surroundings at its own level
    z_bubble = 2000.0
    k = int(np.argmin(np.abs(g.z_c - z_bubble)))
    assert g.interior(theta)[:, :, k].max() > g.interior(theta)[0, 0, k] + 1.0
    qv = case.state.q["qv"] / case.state.rho
    assert float(qv.max()) > 5e-3  # moist


def test_warm_bubble_convects_and_condenses():
    case = make_warm_bubble_case(nx=12, ny=12, nz=12, dt=4.0)
    case.run(30)
    d = case.model.diagnostics(case.state)
    assert d.max_w > 0.5
    assert case.cloud_water_path() > 0.0


# ---------------------------------------------------------------- real case
def test_real_case_structure():
    case = make_real_case(nx=24, ny=21, nz=8)
    g = case.grid
    assert not g.periodic_x and not g.periodic_y
    assert not g.is_flat()
    u, v, w = case.state.velocities()
    # the vortex makes the wind non-uniform and cyclonic
    assert float(v[g.isl_v].max()) > 1.0
    assert float(v[g.isl_v].min()) < -1.0
    assert case.model.relaxation is not None
    assert "rho" in case.model.relaxation.targets


def test_real_case_snapshot_and_boundary_refresh():
    case = make_real_case(nx=24, ny=21, nz=8, dt=10.0)
    snaps = case.run_hours(
        2 * 10.0 / 3600.0, checkpoint_hours=[2 * 10.0 / 3600.0]
    )
    assert len(snaps) == 1
    s = snaps[0]
    assert s.u.shape == (24, 21)
    assert np.isfinite(s.max_wind)
    assert s.min_pressure_pert < 0.0  # a low sits in the domain


def test_real_case_boundary_targets_refresh_hourly():
    case = make_real_case(nx=24, ny=21, nz=8, dt=10.0)
    t0 = case._last_boundary_update
    case.refresh_boundary_targets(3600.0)
    assert case._last_boundary_update == 3600.0 > t0
