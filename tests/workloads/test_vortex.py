"""The balanced warm-core vortex: initial balance, CFL-safe defaults,
track recording, and seeded-member reproducibility."""
import numpy as np
import pytest

from repro.workloads.vortex import make_vortex_case, rankine_wind


# ------------------------------------------------------------ wind profile
def test_rankine_profile_shape():
    vmax, rmax = 20.0, 10e3
    r = np.array([0.0, 0.5 * rmax, rmax, 2 * rmax, 4 * rmax])
    v = rankine_wind(r, vmax, rmax)
    assert v[0] == 0.0
    assert v[1] == pytest.approx(0.5 * vmax)
    assert v[2] == pytest.approx(vmax)          # peak at rmax
    assert v[2] > v[3] > v[4] > 0.0             # decaying tail
    # classic Rankine (alpha=1) decays 1/r
    v1 = rankine_wind(r, vmax, rmax, alpha=1.0)
    assert v1[3] == pytest.approx(vmax / 2)


# --------------------------------------------------------------- balance
def test_initial_state_is_balanced():
    """Gradient-wind + hydrostatic construction: the unperturbed vortex
    barely moves — vertical wind stays a tiny fraction of vmax."""
    case = make_vortex_case(nx=24, ny=24, nz=10, seed=None)
    case.run(5)
    g = case.grid
    _, _, w = case.state.velocities()
    max_w = float(np.abs(w[g.isl]).max())
    assert max_w < 0.01 * case.vmax
    # the wind field survives near its analytic amplitude
    assert case.max_wind() == pytest.approx(case.vmax, rel=0.25)


def test_center_recovered_at_domain_center():
    case = make_vortex_case(nx=24, ny=24, nz=10, seed=None)
    cx, cy = case.center_of_low()
    assert (cx, cy) == pytest.approx(case.center, abs=case.grid.dx)
    assert case.min_surface_p_pert() < 0.0      # a low, not a high


def test_defaults_are_cfl_safe():
    case = make_vortex_case()
    adv, acoustic = case.courant_numbers()
    assert 0.0 < adv < 0.5
    assert 0.0 < acoustic < 0.5


def test_rmax_clamped_to_fit_small_domains():
    # a jittered rmax larger than the untapered core is clamped, never
    # rejected — an ensemble member must stay runnable
    case = make_vortex_case(nx=16, ny=16, nz=8, rmax=50e3)
    r_cut = 0.45 * min(case.grid.nx * case.grid.dx,
                       case.grid.ny * case.grid.dy)
    assert case.rmax == pytest.approx(0.55 * r_cut)


# ----------------------------------------------------------------- track
def test_track_series_records_every_step():
    case = make_vortex_case(nx=16, ny=16, nz=8)
    case.run(4)
    series = case.series()
    assert len(series["t"]) == 4
    assert series["t"] == sorted(series["t"])
    for key in ("cx", "cy", "max_wind", "min_p_pert"):
        assert len(series[key]) == 4
    assert all(w > 0 for w in series["max_wind"])
    assert all(p < 0 for p in series["min_p_pert"])


def test_track_replay_is_idempotent():
    # crash-recovery replays steps; time-keyed points overwrite instead
    # of duplicating
    case = make_vortex_case(nx=16, ny=16, nz=8, seed=3)
    s0 = case.state
    case.model.run(s0, 2)
    case.model.run(s0, 2)  # replay the same two steps
    assert len(case.series()["t"]) == 2


# ------------------------------------------------------------ seeded members
def test_seed_reproduces_bitwise():
    a = make_vortex_case(nx=16, ny=16, nz=8, seed=7).run(2)
    b = make_vortex_case(nx=16, ny=16, nz=8, seed=7).run(2)
    assert np.array_equal(a.rhotheta, b.rhotheta)
    assert np.array_equal(a.rhou, b.rhou)


def test_different_seeds_diverge():
    a = make_vortex_case(nx=16, ny=16, nz=8, seed=1).run(2)
    b = make_vortex_case(nx=16, ny=16, nz=8, seed=2).run(2)
    assert not np.array_equal(a.rhotheta, b.rhotheta)


def test_physics_variant_moistens_the_core():
    case = make_vortex_case(nx=16, ny=16, nz=8, physics=True)
    qv = case.state.q["qv"]
    assert float(qv.max()) > 0.0
