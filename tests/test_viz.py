"""Tests of the ASCII field renderer."""
import numpy as np
import pytest

from repro.viz import field_stats, render_field, render_map


def test_render_field_shape_and_case():
    f = np.zeros((6, 4))
    f[1, 1] = 1.0     # positive -> uppercase at max density
    f[4, 2] = -1.0    # negative -> lowercase/symbol
    out = render_field(f)
    lines = out.splitlines()
    assert len(lines) == 4
    assert all(len(ln) == 6 for ln in lines)
    # flip_y: j=3 is the first row; the positive cell at (1,1) is in
    # row index 2 from the top
    assert lines[2][1] == "@"
    assert lines[1][4] == "@".lower() or lines[1][4] == "@"  # '@' has no case
    # a field with letters in the ramp shows case distinction
    out2 = render_field(f, ramp=" abc")
    assert "C" in out2 and "c" in out2


def test_render_field_zero_field():
    out = render_field(np.zeros((3, 3)))
    assert set(out.replace("\n", "")) == {" "}


def test_render_field_validation():
    with pytest.raises(ValueError):
        render_field(np.zeros(5))


def test_render_map():
    f = np.zeros((4, 3))
    f[2, 0] = 5.0
    out = render_map(f)
    lines = out.splitlines()
    assert lines[-1][2] == "@"  # j=0 is the last row
    with pytest.raises(ValueError):
        render_map(-f - 1.0)


def test_field_stats():
    s = field_stats("w", np.array([[1.0, -1.0]]), "m/s")
    assert s.startswith("w: -1 .. 1")
    assert "m/s" in s
