"""Tests of the Kessler warm-rain microphysics."""
import numpy as np
import pytest

from repro import constants as c
from repro.core.grid import make_grid
from repro.core.pressure import eos_pressure, exner
from repro.core.reference import make_reference_state
from repro.core.state import state_from_reference
from repro.physics.kessler import KesslerConfig, kessler_step
from repro.physics.saturation import (
    dqs_dT,
    saturation_mixing_ratio,
    saturation_vapor_pressure,
)
from repro.workloads.sounding import tropospheric_sounding


@pytest.fixture
def setup():
    g = make_grid(8, 6, 10, 1000.0, 1000.0, 10000.0)
    ref = make_reference_state(g, tropospheric_sounding())
    st = state_from_reference(g, ref)
    return g, ref, st


def _mixing(st, name):
    return st.q[name] / st.rho


# ------------------------------------------------------------- saturation
def test_saturation_vapor_pressure_anchor():
    # ~611 Pa at 0C, ~2.3 kPa at 20C (standard values)
    assert saturation_vapor_pressure(273.16) == pytest.approx(610.78, rel=1e-6)
    assert saturation_vapor_pressure(293.15) == pytest.approx(2339.0, rel=0.02)


def test_saturation_mixing_ratio_monotone_in_T():
    p = np.full(50, 9.0e4)
    T = np.linspace(250.0, 310.0, 50)
    qs = saturation_mixing_ratio(p, T)
    assert np.all(np.diff(qs) > 0)


def test_dqs_dT_matches_numeric():
    p = np.full(20, 8.5e4)
    T = np.linspace(255.0, 305.0, 20)
    dT = 1e-3
    numeric = (saturation_mixing_ratio(p, T + dT) - saturation_mixing_ratio(p, T - dT)) / (2 * dT)
    np.testing.assert_allclose(dqs_dT(p, T), numeric, rtol=1e-5)


# ----------------------------------------------------------------- kessler
def test_dry_state_unchanged(setup):
    g, ref, st = setup
    before = st.rhotheta.copy()
    precip = kessler_step(st, ref, 5.0)
    np.testing.assert_array_equal(st.rhotheta, before)
    assert np.all(precip == 0.0)


def test_supersaturation_condenses_and_heats(setup):
    g, ref, st = setup
    sx, sy = g.isl
    p = eos_pressure(st.rhotheta, g)
    T = (st.rhotheta / st.rho) * exner(p)
    qvs = saturation_mixing_ratio(p, T)
    st.q["qv"][...] = 1.2 * qvs * st.rho  # 120% RH everywhere
    th_before = (st.rhotheta / st.rho).copy()
    kessler_step(st, ref, 5.0)
    qv = _mixing(st, "qv")
    qc = _mixing(st, "qc")
    assert np.all(g.interior(qc) > 0)  # cloud formed
    # vapor reduced toward (new, warmer) saturation
    assert np.all(g.interior(qv) < 1.2 * g.interior(qvs) + 1e-12)
    # latent heating warmed theta
    assert np.all(g.interior(st.rhotheta / st.rho) > g.interior(th_before))


def test_water_conservation_no_sedimentation(setup):
    """qv + qc + qr is pointwise conserved by the conversion terms."""
    g, ref, st = setup
    r = np.random.default_rng(0)
    p = eos_pressure(st.rhotheta, g)
    T = (st.rhotheta / st.rho) * exner(p)
    qvs = saturation_mixing_ratio(p, T)
    st.q["qv"][...] = r.uniform(0.5, 1.3, size=g.shape_c) * qvs * st.rho
    st.q["qc"][...] = r.uniform(0.0, 2e-3, size=g.shape_c) * st.rho
    st.q["qr"][...] = r.uniform(0.0, 2e-3, size=g.shape_c) * st.rho
    total_before = (st.q["qv"] + st.q["qc"] + st.q["qr"])[g.isl].copy()
    cfg = KesslerConfig(sedimentation=False)
    kessler_step(st, ref, 5.0, cfg)
    total_after = (st.q["qv"] + st.q["qc"] + st.q["qr"])[g.isl]
    np.testing.assert_allclose(total_after, total_before, rtol=1e-9, atol=1e-12)


def test_autoconversion_threshold(setup):
    g, ref, st = setup
    cfg = KesslerConfig(evaporation=False, saturation_adjust=False,
                        sedimentation=False)
    # below threshold: nothing happens
    st.q["qc"][...] = 0.5e-3 * st.rho
    kessler_step(st, ref, 5.0, cfg)
    assert np.all(g.interior(_mixing(st, "qr")) == 0.0)
    # above threshold: rain appears
    st.q["qc"][...] = 3e-3 * st.rho
    kessler_step(st, ref, 5.0, cfg)
    assert np.all(g.interior(_mixing(st, "qr")) > 0.0)


def test_accretion_grows_rain(setup):
    g, ref, st = setup
    cfg = KesslerConfig(evaporation=False, saturation_adjust=False,
                        sedimentation=False, autoconv_rate=0.0)
    st.q["qc"][...] = 0.8e-3 * st.rho  # below autoconversion threshold
    st.q["qr"][...] = 1e-3 * st.rho
    qr_before = _mixing(st, "qr").copy()
    kessler_step(st, ref, 5.0, cfg)
    assert np.all(g.interior(_mixing(st, "qr")) > g.interior(qr_before))


def test_rain_evaporation_cools(setup):
    g, ref, st = setup
    cfg = KesslerConfig(saturation_adjust=False, sedimentation=False)
    st.q["qr"][...] = 1e-3 * st.rho  # rain in bone-dry air
    th_before = (st.rhotheta / st.rho).copy()
    kessler_step(st, ref, 5.0, cfg)
    assert np.all(g.interior(_mixing(st, "qv")) > 0)       # vapor appeared
    assert np.all(g.interior(st.rhotheta / st.rho) < g.interior(th_before))


def test_no_negative_water(setup):
    g, ref, st = setup
    r = np.random.default_rng(1)
    st.q["qv"][...] = np.abs(r.normal(2e-3, 2e-3, size=g.shape_c)) * st.rho
    st.q["qc"][...] = np.abs(r.normal(1e-3, 1e-3, size=g.shape_c)) * st.rho
    st.q["qr"][...] = np.abs(r.normal(1e-3, 1e-3, size=g.shape_c)) * st.rho
    for _ in range(5):
        kessler_step(st, ref, 10.0)
    for name in ("qv", "qc", "qr"):
        assert np.all(g.interior(st.q[name]) >= 0.0), name


def test_sedimentation_rains_out(setup):
    """A rain layer aloft falls and reaches the ground; total water mass =
    remaining + precipitated."""
    g, ref, st = setup
    cfg = KesslerConfig(evaporation=False, saturation_adjust=False)
    st.q["qr"][:, :, 6] = 2e-3 * st.rho[:, :, 6]
    mass_before = st.total_water_mass()
    total_precip = 0.0
    for _ in range(60):
        precip = kessler_step(st, ref, 10.0, cfg)
        total_precip += float(precip.sum()) * 10.0 * g.dx * g.dy
    mass_after = st.total_water_mass()
    assert total_precip > 0.0
    assert mass_after + total_precip == pytest.approx(mass_before, rel=1e-9)
    # accumulated diagnostic matches
    assert st.precip_accum is not None
    assert float(st.precip_accum.sum()) * g.dx * g.dy == pytest.approx(
        total_precip, rel=1e-12
    )


def test_sedimentation_mass_sink_on_rho(setup):
    """Rain-out removes total air-parcel mass (the paper's F_rho term)."""
    g, ref, st = setup
    cfg = KesslerConfig(evaporation=False, saturation_adjust=False)
    st.q["qr"][:, :, 2] = 5e-3 * st.rho[:, :, 2]
    rho_mass0 = st.total_mass()
    for _ in range(30):
        kessler_step(st, ref, 10.0, cfg)
    assert st.total_mass() < rho_mass0
