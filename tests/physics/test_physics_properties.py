"""Property-based tests of the microphysics (warm + cold) over random
thermodynamic states: positivity, conservation, and degenerate-input
robustness."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grid import make_grid
from repro.core.reference import make_reference_state
from repro.core.state import state_from_reference
from repro.physics.ice import IceConfig, cold_rain_step
from repro.physics.kessler import KesslerConfig, kessler_step
from repro.workloads.sounding import tropospheric_sounding

_GRID = make_grid(5, 5, 10, 1000.0, 1000.0, 12000.0)
_REF = make_reference_state(_GRID, tropospheric_sounding())


def _random_state(seed: int, moisture_scale: float):
    st_ = state_from_reference(_GRID, _REF)
    r = np.random.default_rng(seed)
    st_.rhotheta *= 1.0 + 0.02 * r.uniform(-1, 1, size=_GRID.shape_c)
    for name in ("qv", "qc", "qr", "qi", "qs"):
        st_.q[name][...] = (
            np.abs(r.normal(0.0, moisture_scale, size=_GRID.shape_c)) * st_.rho
        )
    return st_


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000),
       scale=st.floats(1e-6, 5e-3),
       dt=st.floats(1.0, 30.0))
def test_warm_rain_positivity_and_budget(seed, scale, dt):
    state = _random_state(seed, scale)
    g = _GRID
    w0 = state.total_water_mass()
    precip = kessler_step(state, _REF, dt, KesslerConfig())
    rained = float(precip.sum()) * dt * g.dx * g.dy
    for name in ("qv", "qc", "qr"):
        assert np.all(g.interior(state.q[name]) >= 0.0), name
    assert rained >= 0.0
    assert state.total_water_mass() + rained == pytest.approx(w0, rel=1e-6)
    # theta stays physical
    theta = g.interior(state.rhotheta / state.rho)
    assert np.all(theta > 200.0) and np.all(theta < 600.0)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000),
       scale=st.floats(1e-6, 5e-3),
       dt=st.floats(1.0, 30.0))
def test_cold_rain_positivity_and_budget(seed, scale, dt):
    state = _random_state(seed, scale)
    g = _GRID
    w0 = state.total_water_mass()
    snow = cold_rain_step(state, _REF, dt, IceConfig())
    snowed = float(snow.sum()) * dt * g.dx * g.dy
    for name in ("qv", "qc", "qr", "qi", "qs"):
        assert np.all(g.interior(state.q[name]) >= 0.0), name
    assert snowed >= 0.0
    assert state.total_water_mass() + snowed == pytest.approx(w0, rel=1e-6)


def test_dry_state_fixed_point():
    """Completely dry air is a fixed point of both schemes."""
    state = state_from_reference(_GRID, _REF)
    before = state.rhotheta.copy()
    kessler_step(state, _REF, 10.0)
    cold_rain_step(state, _REF, 10.0)
    np.testing.assert_array_equal(state.rhotheta, before)
    for name in ("qv", "qc", "qr", "qi", "qs"):
        assert np.all(state.q[name] == 0.0)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1000))
def test_repeated_application_converges(seed):
    """Iterating the warm scheme on a static state drives it toward a
    saturated/rained-out equilibrium: the per-step tendency shrinks."""
    state = _random_state(seed, 2e-3)
    g = _GRID
    deltas = []
    prev = state.rhotheta.copy()
    for _ in range(6):
        kessler_step(state, _REF, 20.0, KesslerConfig(sedimentation=False))
        deltas.append(float(np.abs(state.rhotheta - prev).max()))
        prev = state.rhotheta.copy()
    assert deltas[-1] < deltas[0] + 1e-12
