"""Tests of the cold-rain (ice phase) extension."""
import numpy as np
import pytest

from repro import constants as c
from repro.core.grid import make_grid
from repro.core.pressure import eos_pressure, exner
from repro.core.reference import make_reference_state
from repro.core.state import state_from_reference
from repro.physics.ice import (
    IceConfig,
    T_HOMOGENEOUS,
    cold_rain_step,
    ice_saturation_mixing_ratio,
    snow_terminal_velocity,
)
from repro.physics.saturation import saturation_mixing_ratio
from repro.physics.sedimentation import terminal_velocity
from repro.workloads.sounding import tropospheric_sounding


@pytest.fixture
def setup():
    """Deep grid reaching well below freezing aloft."""
    g = make_grid(6, 6, 16, 1000.0, 1000.0, 14000.0)
    ref = make_reference_state(g, tropospheric_sounding())
    st = state_from_reference(g, ref)
    return g, ref, st


def _temps(st, g):
    sx, sy = g.isl
    p = eos_pressure(st.rhotheta, g)[sx, sy]
    return (st.rhotheta[sx, sy] / st.rho[sx, sy]) * exner(p), p


def test_atmosphere_crosses_freezing(setup):
    g, ref, st = setup
    T, _ = _temps(st, g)
    assert T[..., 0].min() > c.T0          # warm at the ground
    assert T[..., -1].max() < c.T0         # frozen aloft


def test_ice_saturation_below_liquid():
    """q_si < q_s below freezing (the Bergeron basis)."""
    p = np.full(30, 5.0e4)
    T = np.linspace(230.0, 272.0, 30)
    assert np.all(ice_saturation_mixing_ratio(p, T) < saturation_mixing_ratio(p, T))


def test_snow_falls_slower_than_rain():
    rho_q = np.array([1e-4, 1e-3])
    rho = np.array([1.0, 1.0])
    assert np.all(snow_terminal_velocity(rho_q, rho) < terminal_velocity(rho_q, rho))
    assert np.all(snow_terminal_velocity(rho_q, rho) < 3.0)


def test_supercooled_cloud_freezes(setup):
    g, ref, st = setup
    cfg = IceConfig(sedimentation=False)
    st.q["qc"][...] = 1e-3 * st.rho
    # ice-saturated vapor so sublimation does not eat the frozen cloud
    p_full = eos_pressure(st.rhotheta, g)
    T_full = (st.rhotheta / st.rho) * exner(p_full)
    st.q["qv"][...] = ice_saturation_mixing_ratio(p_full, T_full) * st.rho
    T_before, _ = _temps(st, g)
    cold_rain_step(st, ref, 60.0, cfg)
    sx, sy = g.isl
    qi = (st.q["qi"] / st.rho)[sx, sy]
    qc = (st.q["qc"] / st.rho)[sx, sy]
    cold = T_before < c.T0
    very_cold = T_before <= T_HOMOGENEOUS
    assert np.all(qi[cold] > 0)            # ice formed where supercooled
    assert np.all(qc[very_cold] < 1e-12)   # instantaneous below -38 C
    warm = T_before > c.T0 + 2.0
    assert np.all(qi[warm] == 0.0)         # no ice in warm air
    # freezing released latent heat
    T_after, _ = _temps(st, g)
    assert np.all(T_after[cold] >= T_before[cold])


def test_deposition_grows_ice_from_vapor(setup):
    g, ref, st = setup
    cfg = IceConfig(sedimentation=False)
    T, p = _temps(st, g)
    qsi_full = ice_saturation_mixing_ratio(eos_pressure(st.rhotheta, g),
                                           (st.rhotheta / st.rho) * exner(eos_pressure(st.rhotheta, g)))
    st.q["qv"][...] = 1.3 * qsi_full * st.rho
    cold_rain_step(st, ref, 120.0, cfg)
    sx, sy = g.isl
    qi = (st.q["qi"] / st.rho)[sx, sy]
    cold = T < c.T0
    assert np.all(qi[cold] > 0)


def test_sublimation_limited_by_ice(setup):
    """Bone-dry air cannot sublimate more ice than exists."""
    g, ref, st = setup
    cfg = IceConfig(sedimentation=False)
    st.q["qi"][...] = 1e-5 * st.rho
    cold_rain_step(st, ref, 3600.0, cfg)
    assert np.all(g.interior(st.q["qi"]) >= 0.0)
    assert np.all(g.interior(st.q["qv"]) >= 0.0)


def test_autoconversion_and_riming_build_snow(setup):
    g, ref, st = setup
    cfg = IceConfig(sedimentation=False)
    st.q["qi"][...] = 2e-3 * st.rho
    st.q["qc"][...] = 1e-3 * st.rho
    cold_rain_step(st, ref, 60.0, cfg)
    sx, sy = g.isl
    T, _ = _temps(st, g)
    qs = (st.q["qs"] / st.rho)[sx, sy]
    assert np.all(qs[T < c.T0 - 1.0] > 0)


def test_snow_melts_to_rain(setup):
    g, ref, st = setup
    cfg = IceConfig(sedimentation=False)
    # put snow everywhere; only the warm low levels should melt
    st.q["qs"][...] = 1e-3 * st.rho
    T_before, _ = _temps(st, g)
    qr_before = (st.q["qr"] / st.rho).copy()
    cold_rain_step(st, ref, 120.0, cfg)
    sx, sy = g.isl
    qr = (st.q["qr"] / st.rho)[sx, sy]
    warm = T_before >= c.T0
    assert np.all(qr[warm] > g.interior(qr_before)[warm])
    # melting cools
    T_after, _ = _temps(st, g)
    assert np.all(T_after[warm] <= T_before[warm] + 1e-12)


def test_water_conservation_without_sedimentation(setup):
    g, ref, st = setup
    cfg = IceConfig(sedimentation=False)
    r = np.random.default_rng(0)
    for name in ("qv", "qc", "qr", "qi", "qs"):
        st.q[name][...] = np.abs(r.normal(1e-3, 5e-4, size=g.shape_c)) * st.rho
    total_before = sum(
        st.q[n][g.isl].copy() for n in ("qv", "qc", "qr", "qi", "qs")
    )
    cold_rain_step(st, ref, 30.0, cfg)
    total_after = sum(st.q[n][g.isl] for n in ("qv", "qc", "qr", "qi", "qs"))
    np.testing.assert_allclose(total_after, total_before, rtol=1e-9, atol=1e-12)


def test_snowfall_reaches_ground_and_accumulates(setup):
    g, ref, st = setup
    cfg = IceConfig()
    st.q["qs"][:, :, 2] = 5e-3 * st.rho[:, :, 2]   # snow layer near ground
    total = 0.0
    for _ in range(50):
        snow = cold_rain_step(st, ref, 30.0, cfg)
        total += float(snow.sum()) * 30.0
    assert total > 0.0
    assert st.precip_accum is not None
    assert float(st.precip_accum.sum()) == pytest.approx(total, rel=1e-9)


def test_full_model_with_ice_runs():
    """End to end: a cold deep-convection case with the ice path enabled
    stays stable and produces frozen condensate aloft."""
    from repro.core.model import AsucaModel, ModelConfig
    from repro.core.rk3 import DynamicsConfig

    g = make_grid(10, 10, 16, 1000.0, 1000.0, 14000.0)
    ref = make_reference_state(g, tropospheric_sounding())
    cfg = ModelConfig(
        dynamics=DynamicsConfig(dt=4.0, ns=4, rayleigh_depth=3000.0),
        physics_enabled=True, ice_enabled=True,
    )
    m = AsucaModel(g, ref, cfg)
    st = m.initial_state()
    z3 = g.z3d_c()
    X = g.x_c()[:, None, None]
    Y = g.y_c()[None, :, None]
    bubble = np.maximum(0.0, 1.0 - np.sqrt(
        ((X - 5000.0) / 2500.0) ** 2 + ((Y - 5000.0) / 2500.0) ** 2
        + ((z3 - 2000.0) / 1500.0) ** 2))
    st.rhotheta += st.rho * 5.0 * bubble
    p = eos_pressure(st.rhotheta, g)
    T = (st.rhotheta / st.rho) * exner(p)
    st.q["qv"][...] = 0.95 * saturation_mixing_ratio(p, T) * st.rho
    m._exchange(st, None)
    for _ in range(40):
        st = m.step(st)
    d = m.diagnostics(st)
    assert np.isfinite(d.max_w) and d.max_w < 40.0
    frozen = float((st.q["qi"] + st.q["qs"]).max())
    assert frozen > 0.0
