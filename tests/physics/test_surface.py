"""Tests of the surface heating / Newtonian cooling forcings."""
import numpy as np
import pytest

from repro.core.grid import make_grid
from repro.core.model import AsucaModel, ModelConfig
from repro.core.reference import make_reference_state
from repro.core.rk3 import DynamicsConfig
from repro.core.state import state_from_reference
from repro.physics.surface import (
    SurfaceConfig,
    apply_newtonian_cooling,
    apply_surface_heating,
    diurnal_cycle_flux,
)
from repro.workloads.sounding import constant_stability_sounding, isentropic_sounding


@pytest.fixture
def setup():
    g = make_grid(10, 10, 10, 1000.0, 1000.0, 5000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    return g, ref, state_from_reference(g, ref)


def test_heating_warms_surface_level_only(setup):
    g, ref, st = setup
    th_before = (st.rhotheta / st.rho).copy()
    apply_surface_heating(st, ref, dt=60.0, flux_wm2=300.0)
    th = st.rhotheta / st.rho
    sx, sy = g.isl
    assert np.all(th[sx, sy, 0] > th_before[sx, sy, 0])
    np.testing.assert_array_equal(th[sx, sy, 1:], th_before[sx, sy, 1:])
    # magnitude: dT ~ H dt / (rho cp dz) ~ 300*60/(1.2*1004*500) ~ 0.03 K
    dth = float((th - th_before)[sx, sy, 0].mean())
    assert 0.01 < dth < 0.1


def test_heating_conserves_mass(setup):
    g, ref, st = setup
    m0 = st.total_mass()
    apply_surface_heating(st, ref, dt=60.0, flux_wm2=500.0)
    assert st.total_mass() == m0


def test_zero_flux_noop(setup):
    g, ref, st = setup
    before = st.rhotheta.copy()
    apply_surface_heating(st, ref, dt=60.0, flux_wm2=0.0)
    np.testing.assert_array_equal(st.rhotheta, before)


def test_newtonian_cooling_relaxes_perturbation(setup):
    g, ref, st = setup
    sx, sy = g.isl
    st.rhotheta[sx, sy] += st.rho[sx, sy] * 2.0
    apply_newtonian_cooling(st, ref, dt=600.0, tau=600.0)
    pert = (st.rhotheta - ref.rhotheta_c * g.jac[:, :, None])[sx, sy]
    th_pert = pert / st.rho[sx, sy]
    # implicit relaxation over one tau: factor 1/(1+1) = half
    np.testing.assert_allclose(th_pert, 1.0, rtol=1e-9)
    apply_newtonian_cooling(st, ref, dt=0.0, tau=0.0)  # off: no change
    np.testing.assert_allclose(
        (st.rhotheta - ref.rhotheta_c * g.jac[:, :, None])[sx, sy]
        / st.rho[sx, sy], 1.0, rtol=1e-9)


def test_diurnal_cycle():
    assert diurnal_cycle_flux(400.0, 0.0) == 0.0
    assert diurnal_cycle_flux(400.0, 21600.0) == pytest.approx(400.0)  # noon
    assert diurnal_cycle_flux(400.0, 64800.0) == 0.0                   # night
    assert diurnal_cycle_flux(400.0, 10000.0) > 0.0


def test_heated_boundary_layer_convects():
    """Strong steady surface heating on a resting atmosphere spins up
    boundary-layer convection within ~10 minutes."""
    g = make_grid(16, 16, 12, 500.0, 500.0, 3000.0)
    ref = make_reference_state(g, isentropic_sounding(300.0))  # neutral BL
    cfg = ModelConfig(
        dynamics=DynamicsConfig(dt=3.0, ns=4, rayleigh_depth=800.0),
        surface=SurfaceConfig(heat_flux=500.0, radiation_tau=7200.0),
    )
    m = AsucaModel(g, ref, cfg)
    st = m.initial_state()
    # tiny random seed so the instability has something to amplify
    r = np.random.default_rng(0)
    st.rhotheta += st.rho * 0.01 * r.normal(size=g.shape_c)
    m._exchange(st, None)
    for _ in range(150):
        st = m.step(st)
    d = m.diagnostics(st)
    assert d.max_w > 0.15           # thermals
    assert d.max_w < 20.0           # but bounded
    # surface level warmed relative to the base state
    sx, sy = g.isl
    pert = (st.rhotheta / st.rho - ref.theta_c)[sx, sy]
    assert float(pert[:, :, 0].mean()) > 0.3
