"""Time-series pipeline: snapshot grid semantics, the counter-record
('C' event) round-trip through the exporters and the doctor's loader,
and the Prometheus/CSV exports."""
import pytest

from repro.obs import SnapshotSeries, TraceSession
from repro.obs.exporters import write_chrome_trace, write_jsonl
from repro.obs.doctor.load import load_trace


# -------------------------------------------------------------- the grid
def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        SnapshotSeries(0.0)


def test_last_write_wins_within_a_bucket_and_carry_forward_across():
    s = SnapshotSeries(1.0)
    s.ingest("queue.depth", 0.1, 3.0)
    s.ingest("queue.depth", 0.9, 5.0)     # same bucket: last wins
    s.ingest("queue.depth", 3.5, 1.0)     # bucket 3; 1-2 carry forward
    snaps = s.snapshots()
    assert [sn.t for sn in snaps] == [1.0, 2.0, 3.0, 4.0]
    values = [next(iter(sn.values.values())) for sn in snaps]
    assert values == [5.0, 5.0, 5.0, 1.0]


def test_labels_separate_series():
    s = SnapshotSeries(1.0)
    s.ingest("util", 0.5, 0.25, {"tenant": "a"})
    s.ingest("util", 0.5, 0.75, {"tenant": "b"})
    snap = s.final()
    assert len(snap.values) == 2
    rendered = snap.as_dict()["series"]
    assert rendered['util{tenant="a"}'] == 0.25
    assert rendered['util{tenant="b"}'] == 0.75


def test_ingest_registry_folds_counters_and_gauges():
    sess = TraceSession("t")
    sess.metrics.counter("jobs.done").inc(7)
    sess.metrics.gauge("util").set(0.5)
    s = SnapshotSeries(0.5)
    s.ingest_registry(sess.metrics, 1.0)
    values = {k.name: v for k, v in s.final().values.items()}
    assert values == {"jobs.done": 7.0, "util": 0.5}


def test_empty_series_has_no_snapshots():
    s = SnapshotSeries(1.0)
    assert s.snapshots() == []
    assert s.final().values == {}


# --------------------------------------------- counter-record round-trip
def _session_with_counters() -> TraceSession:
    sess = TraceSession("rt")
    for i in range(6):
        sess.record_counter("queue.depth", float(i % 3), i * 0.02,
                            pid="service")
        sess.record_counter("fleet.gpus_in_use", float(i), i * 0.02,
                            pid="service")
    return sess


@pytest.mark.parametrize("fmt", ["chrome", "jsonl"])
def test_counter_round_trip_exporter_loader_snapshots(tmp_path, fmt):
    sess = _session_with_counters()
    path = str(tmp_path / f"trace.{'json' if fmt == 'chrome' else 'jsonl'}")
    (write_chrome_trace if fmt == "chrome" else write_jsonl)(sess, path)
    trace = load_trace(path)

    series = trace.counter_series("queue.depth", pid="service")
    assert [v for _, v in series] == [0.0, 1.0, 2.0, 0.0, 1.0, 2.0]

    snaps = SnapshotSeries(0.05)
    assert snaps.ingest_counters(
        (rec for (pid, name), samples in trace.counters.items()
         for rec in [type("R", (), {"name": name, "pid": pid,
                                    "ts": t, "value": v,
                                    "series": "value"})()
                     for t, v in samples])) == 12
    grid = snaps.snapshots()
    assert grid          # both formats produce the same grid
    last = {k.name: v for k, v in grid[-1].values.items()}
    assert last == {"queue.depth": 2.0, "fleet.gpus_in_use": 5.0}


def test_chrome_and_jsonl_round_trips_agree(tmp_path):
    sess = _session_with_counters()
    cpath = write_chrome_trace(sess, str(tmp_path / "t.json"))
    jpath = write_jsonl(sess, str(tmp_path / "t.jsonl"))
    ct, jt = load_trace(cpath), load_trace(jpath)
    assert ct.counter_series("queue.depth") == \
        jt.counter_series("queue.depth")
    assert ct.metrics == jt.metrics


def test_loader_reconstructs_spans_instants_and_metrics(tmp_path):
    sess = TraceSession("full")
    sess.record_span("phase", 0.0, 0.5, pid="host", tid="main")
    sess.record_instant("alert wait", 0.25, pid="service", tid="alerts",
                        cat="alert", args={"metric": "wait_s"})
    sess.metrics.gauge("serve.utilization").set(0.75)
    for path in (write_chrome_trace(sess, str(tmp_path / "f.json")),
                 write_jsonl(sess, str(tmp_path / "f.jsonl"))):
        trace = load_trace(path)
        assert trace.n_spans == len(trace.spans) == 1
        assert trace.spans[0].name == "phase"
        alerts = [i for i in trace.instants if i.cat == "alert"]
        assert alerts and alerts[0].args["metric"] == "wait_s"
        assert trace.metrics["gauges"]["serve.utilization"] == 0.75


# ----------------------------------------------------------- the exports
def test_prometheus_exposition_format():
    s = SnapshotSeries(0.5)
    s.ingest("queue.depth", 0.4, 7.0, {"pid": "service"})
    s.ingest("serve.utilization", 0.4, 0.5)
    text = s.prometheus()
    assert "# TYPE repro_queue_depth gauge" in text
    assert 'repro_queue_depth{pid="service"} 7 500' in text
    assert "repro_serve_utilization 0.5 500" in text
    assert text == s.prometheus()        # deterministic


def test_csv_export_has_one_row_per_series_per_snapshot():
    s = SnapshotSeries(1.0)
    s.ingest("a", 0.5, 1.0)
    s.ingest("a", 1.5, 2.0)
    lines = s.csv().strip().splitlines()
    assert lines[0] == "t,name,labels,value"
    assert lines[1:] == ["1,a,,1", "2,a,,2"]
