"""The fleet view behind ``repro top`` / ``doctor --fleet``: exact
agreement with the ServiceReport on a >=100-job Poisson workload, the
CLI surfaces, and the sparkline renderer."""
import json

import pytest

from repro.cli import main
from repro.obs import (
    TraceSession,
    fleet_view_from_session,
    fleet_view_from_trace,
    render_fleet_view,
    render_frames,
    sparkline,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.doctor.load import load_trace
from repro.serve import ForecastService, GpuFleet, poisson_workload


def _run_service(n_jobs=120, *, slo=None):
    session = TraceSession("serve")
    svc = ForecastService(GpuFleet(4), policy="sjf", session=session,
                          slo=slo, execute=False)
    rep = svc.run(poisson_workload(n_jobs, seed=11, rate=60.0))
    session.finalize()
    return session, rep


# ------------------------------------------------- report == fleet view
@pytest.mark.parametrize("fmt", ["chrome", "jsonl"])
def test_replayed_view_equals_the_service_report_exactly(tmp_path, fmt):
    session, rep = _run_service()
    assert rep.n_submitted >= 100
    path = str(tmp_path / f"t.{'json' if fmt == 'chrome' else 'jsonl'}")
    (write_chrome_trace if fmt == "chrome" else write_jsonl)(session, path)
    view = fleet_view_from_trace(load_trace(path))
    # bitwise equality, not approx: the trace carries one exact sample
    # per completed job and the same percentile_summary folds both
    assert view.wait_s == rep.wait_s
    assert view.turnaround_s == rep.turnaround_s
    assert view.utilization == rep.utilization
    assert view.cache_hit_rate == rep.cache_hit_rate
    assert view.makespan_s == rep.makespan_s
    assert view.throughput_jobs_per_s == rep.throughput_jobs_per_s
    assert view.n_gpus == rep.n_gpus
    assert view.jobs["submitted"] == rep.n_submitted
    assert view.jobs["done"] == rep.n_done
    assert view.jobs["cached"] == rep.n_cached
    assert view.gpus_in_use["max"] <= rep.n_gpus


def test_session_view_equals_trace_view(tmp_path):
    session, rep = _run_service()
    live = fleet_view_from_session(session)
    path = write_jsonl(session, str(tmp_path / "t.jsonl"))
    replayed = fleet_view_from_trace(load_trace(path))
    assert live.as_dict() == replayed.as_dict()
    assert live.wait_s == rep.wait_s


def test_alerts_flow_into_the_view():
    session, rep = _run_service(slo="p95_wait_s<0.001")
    assert rep.alerts
    view = fleet_view_from_session(session)
    assert len(view.alerts) == len(rep.alerts)
    assert view.alerts[0]["metric"] == rep.alerts[0]["metric"]
    assert view.alerts[0]["t"] == rep.alerts[0]["t"]


def test_render_fleet_view_and_frames():
    session, _ = _run_service()
    view = fleet_view_from_session(session)
    text = render_fleet_view(view)
    assert "fleet view" in text and "queue depth" in text
    assert "p99" in text and "cache hit rate" in text
    frames = render_frames(view, frames=6)
    assert len(frames.splitlines()) <= 7       # header + <= 6 rows


# ------------------------------------------------------------------- CLI
def test_cli_top_replay_matches_serve_report(tmp_path, capsys):
    trace = tmp_path / "serve.jsonl"
    args = ["--jobs", "110", "--gpus", "4", "--seed", "5",
            "--no-execute"]
    assert main(["serve", *args, "--trace-jsonl", str(trace),
                 "--json"]) == 0
    rep = json.loads(capsys.readouterr().out)
    assert main(["top", "--replay", str(trace), "--json"]) == 0
    view = json.loads(capsys.readouterr().out)
    assert view["wait_s"] == rep["wait_s"]
    assert view["turnaround_s"] == rep["turnaround_s"]
    assert view["utilization"] == rep["utilization"]
    assert view["jobs"]["submitted"] == rep["n_submitted"] >= 100


def test_cli_top_live_mode(capsys):
    assert main(["top", "--jobs", "40", "--gpus", "4", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "fleet view" in out and "t [s]" in out


def test_cli_top_replay_bad_file_is_usage_error(tmp_path, capsys):
    missing = tmp_path / "nope.jsonl"
    assert main(["top", "--replay", str(missing)]) == 2


def test_cli_doctor_fleet(tmp_path, capsys):
    trace = tmp_path / "serve.json"
    assert main(["serve", "--jobs", "30", "--gpus", "4", "--no-execute",
                 "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["doctor", "--fleet", "--trace", str(trace)]) == 0
    assert "fleet view" in capsys.readouterr().out
    # --fleet without --trace is a usage error
    assert main(["doctor", "--fleet"]) == 2


def test_cli_doctor_fleet_exit_1_on_alerts(tmp_path, capsys):
    trace = tmp_path / "serve.json"
    assert main(["serve", "--jobs", "40", "--gpus", "2", "--no-execute",
                 "--slo", "p95_wait_s<0.0001", "--trace",
                 str(trace)]) == 1
    capsys.readouterr()
    assert main(["doctor", "--fleet", "--trace", str(trace)]) == 1
    assert "ALERT" in capsys.readouterr().out


# ------------------------------------------------------------- sparkline
def test_sparkline_is_deterministic_and_bounded():
    values = [float(i % 7) for i in range(200)]
    line = sparkline(values, width=24)
    assert len(line) == 24
    assert line == sparkline(values, width=24)
    assert sparkline([]) == ""
    assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"
    ramp = sparkline([0.0, 1.0, 2.0, 3.0])
    assert ramp[0] == "▁" and ramp[-1] == "█"
