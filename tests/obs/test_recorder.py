"""Flight recorder: ring bound, trip/dump semantics, crash coverage,
and the non-perturbation guarantee (recorder on/off bit-identity)."""
import json

import numpy as np
import pytest

from repro.api import RunSpec
from repro.obs import FlightRecorder, load_flight_dump
from repro.serve import ForecastService, GpuFleet, Submission, poisson_workload


# --------------------------------------------------------------- the ring
def test_ring_is_bounded_and_keeps_the_newest_events():
    rec = FlightRecorder(capacity=8)
    for i in range(20):
        rec.record("pop", t=float(i), i=i)
    assert len(rec) == 8
    assert rec.recorded == 20
    assert [ev.fields["i"] for ev in rec.events()] == list(range(12, 20))
    assert [ev.seq for ev in rec.events()] == list(range(12, 20))


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_dump_and_load_round_trip(tmp_path):
    rec = FlightRecorder(capacity=16)
    rec.record("start", t=0.5, job=3, gpus=2)
    rec.record("finish", t=1.25, job=3)
    path = rec.dump(str(tmp_path / "dump.jsonl"))
    header, events = load_flight_dump(path)
    assert header["capacity"] == 16
    assert header["recorded"] == 2 and header["dropped"] == 0
    assert [e["kind"] for e in events] == ["start", "finish"]
    assert events[0]["job"] == 3 and events[0]["t"] == 0.5
    assert all("wall" in e for e in events)


def test_dump_without_a_path_raises():
    with pytest.raises(ValueError):
        FlightRecorder().dump()


def test_wall_free_dump_is_deterministic(tmp_path):
    paths = []
    for run in ("a", "b"):
        rec = FlightRecorder(capacity=8)
        for i in range(5):
            rec.record("pop", t=i * 0.25, i=i)
        paths.append(rec.dump(str(tmp_path / f"{run}.jsonl"), wall=False))
    assert (tmp_path / "a.jsonl").read_bytes() == \
        (tmp_path / "b.jsonl").read_bytes()
    _, events = load_flight_dump(paths[0])
    assert all("wall" not in e for e in events)


def test_load_rejects_non_dump_files(tmp_path):
    path = tmp_path / "not_a_dump.jsonl"
    path.write_text(json.dumps({"type": "counter"}) + "\n")
    with pytest.raises(ValueError):
        load_flight_dump(str(path))


# ------------------------------------------------------------- tripping
def test_incident_kind_trips_an_auto_dump(tmp_path):
    path = tmp_path / "flight.jsonl"
    rec = FlightRecorder(capacity=32, path=str(path))
    rec.record("pop", t=0.0)
    assert not path.exists()          # ordinary events never write
    rec.record("crash", t=0.5, job=7)
    assert path.exists() and rec.trips == 1
    header, events = load_flight_dump(str(path))
    assert header["tripped_by"] == "crash"
    assert events[-1]["kind"] == "crash"


def test_later_trip_overwrites_so_dump_covers_latest_incident(tmp_path):
    path = tmp_path / "flight.jsonl"
    rec = FlightRecorder(capacity=32, path=str(path))
    rec.record("crash", t=0.1, job=1)
    rec.record("pop", t=0.2)
    rec.record("crash", t=0.3, job=2)
    _, events = load_flight_dump(str(path))
    assert events[-1]["kind"] == "crash" and events[-1]["job"] == 2
    assert rec.trips == 2


def test_flush_if_untripped(tmp_path):
    clean = FlightRecorder(capacity=8, path=str(tmp_path / "clean.jsonl"))
    clean.record("pop", t=0.0)
    assert clean.flush_if_untripped() is not None
    tripped = FlightRecorder(capacity=8,
                             path=str(tmp_path / "tripped.jsonl"))
    tripped.record("alert", t=0.0, metric="wait_s")
    before = (tmp_path / "tripped.jsonl").read_text()
    tripped.record("pop", t=1.0)
    assert tripped.flush_if_untripped() is None
    assert (tmp_path / "tripped.jsonl").read_text() == before


# -------------------------------------------------- black box on the fleet
def test_crash_fault_run_auto_dumps_and_last_events_cover_the_crash(
        tmp_path):
    path = tmp_path / "flight.jsonl"
    svc = ForecastService(
        GpuFleet(2), faults="crash@1:x5", execute=False,
        recorder=FlightRecorder(capacity=64, path=str(path)))
    rep = svc.run(poisson_workload(8, seed=3, rate=40.0))
    assert rep.crashes > 0
    header, events = load_flight_dump(str(path))
    assert header["tripped_by"] == "crash"
    crash_events = [e for e in events if e["kind"] == "crash"]
    assert crash_events and crash_events[-1]["job"] == 1
    # the dump ends at the moment of the (latest) incident
    assert events[-1]["kind"] == "crash"


def test_service_records_transitions_and_passes():
    rec = FlightRecorder(capacity=4096)
    svc = ForecastService(GpuFleet(2), execute=False, recorder=rec)
    svc.run(poisson_workload(20, seed=0, rate=40.0))
    kinds = {ev.kind for ev in rec.events()}
    assert {"pop", "pass", "admit", "start", "finish"} <= kinds
    assert rec.trips == 0


# --------------------------------------------------------- non-perturbing
def test_recorder_on_off_runs_are_bit_identical_2x2_multigpu():
    spec = RunSpec(workload="warm-bubble", nx=16, ny=16, nz=8, steps=2,
                   ranks="2x2", backend="multigpu")

    def run(recorder):
        svc = ForecastService(GpuFleet(4), recorder=recorder)
        rep = svc.run([Submission(t=0.0, spec=spec)])
        return svc, rep

    svc_off, rep_off = run(None)
    svc_on, rep_on = run(FlightRecorder(capacity=256))
    assert rep_on.as_dict() == rep_off.as_dict()
    state_on = svc_on.jobs[0].result.state
    state_off = svc_off.jobs[0].result.state
    for name in ("rho", "rhou", "rhov", "rhow", "rhotheta"):
        assert np.array_equal(getattr(state_on, name),
                              getattr(state_off, name))
