"""A 2x2-rank decomposed warm-bubble run under tracing must export a
valid Chrome Trace Format JSON with per-rank device tracks, kernel /
copy / message events, and metrics that agree with the existing
TimelineSummary / TrafficStats numbers — the acceptance criteria of the
observability layer."""
import json

import pytest

from repro.dist.multigpu import MultiGpuAsuca
from repro.obs import (
    TraceSession,
    chrome_trace,
    jsonl_events,
    summary_text,
    use_session,
    write_chrome_trace,
    write_jsonl,
)
from repro.perf.timeline import summarize
from repro.workloads.warm_bubble import make_warm_bubble_case

N_STEPS = 2

#: CTF event phases this exporter may legally emit
KNOWN_PH = {"X", "M", "i", "s", "f", "C"}


@pytest.fixture(scope="module")
def traced_run():
    case = make_warm_bubble_case(nx=16, ny=16, nz=8)
    machine = MultiGpuAsuca(case.grid, case.ref, 2, 2, case.model.config)
    machine.attach_devices()
    session = TraceSession("warm-bubble-2x2")
    with use_session(session):
        states = machine.scatter_state(case.state)
        machine.exchange_all(states, None)
        for _ in range(N_STEPS):
            states = machine.step(states)
    for r, device in enumerate(machine.devices):
        session.collect_device(device, rank=r)
    session.collect_comm(machine.comm)
    session.finalize(steps=N_STEPS)
    return session, machine


def test_ctf_event_schema(traced_run):
    """Every event satisfies the CTF field contract (ph/ts/dur/pid/tid)
    without needing a browser."""
    session, _ = traced_run
    doc = chrome_trace(session)
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    for ev in doc["traceEvents"]:
        assert ev["ph"] in KNOWN_PH
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        if ev["ph"] == "X":
            assert isinstance(ev["name"], str)
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
        elif ev["ph"] in ("s", "f"):
            assert "id" in ev and "ts" in ev
        elif ev["ph"] == "i":
            assert "ts" in ev


def test_ctf_has_rank_tracks_and_event_kinds(traced_run):
    session, _ = traced_run
    doc = chrome_trace(session)
    evs = doc["traceEvents"]
    names = {ev["args"]["name"] for ev in evs
             if ev["ph"] == "M" and ev["name"] == "process_name"}
    assert {"rank0", "rank1", "rank2", "rank3"} <= names  # >= 4 rank tracks
    cats = {ev.get("cat") for ev in evs if ev["ph"] == "X"}
    assert {"kernel", "h2d", "d2h"} <= cats           # kernel + copy events
    assert any(ev["ph"] == "s" for ev in evs)          # message flow arrows
    assert any(ev["ph"] == "f" for ev in evs)


def test_trace_json_round_trips(traced_run, tmp_path):
    session, _ = traced_run
    path = write_chrome_trace(session, str(tmp_path / "trace.json"))
    doc = json.load(open(path))
    assert doc["otherData"]["session"] == "warm-bubble-2x2"
    assert len(doc["traceEvents"]) > 100


def test_jsonl_stream(traced_run, tmp_path):
    session, _ = traced_run
    path = write_jsonl(session, str(tmp_path / "trace.jsonl"))
    lines = [json.loads(line) for line in open(path)]
    assert lines[0] == {"type": "session", "name": "warm-bubble-2x2"}
    types = {line["type"] for line in lines}
    assert {"span", "device_op", "flow", "metrics"} <= types
    assert lines[-1]["type"] == "metrics"
    assert len(lines) == sum(1 for _ in jsonl_events(session))


def test_counter_series_exports_as_ctf_counter_events():
    session = TraceSession("counters")
    for t, depth in ((0.0, 0), (0.1, 3), (0.2, 1)):
        session.record_counter("queue.depth", depth, t, pid="service")
    session.record_counter("gpus", 2, 0.1, pid="service", series="in_use")
    session.finalize()

    doc = chrome_trace(session)
    cs = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
    assert len(cs) == 4
    depths = [ev for ev in cs if ev["name"] == "queue.depth"]
    assert [ev["args"]["value"] for ev in depths] == [0, 3, 1]
    assert [ev["ts"] for ev in depths] == [0, 100_000, 200_000]  # us
    gpus = next(ev for ev in cs if ev["name"] == "gpus")
    assert gpus["args"] == {"in_use": 2}

    jl = [line for line in jsonl_events(session)
          if line["type"] == "counter"]
    assert len(jl) == 4
    assert jl[0]["name"] == "queue.depth"


def test_metrics_agree_with_timeline_and_traffic(traced_run):
    """The registry's numbers are the same ones TimelineSummary and
    TrafficStats report for the identical run."""
    session, machine = traced_run
    m = session.metrics
    kernels = copies_h2d = copies_d2h = 0
    total_ops = 0
    for device in machine.devices:
        s = summarize(device)
        total_ops += s.op_count
        kernels += sum(1 for op in device.timeline if op.kind == "kernel")
        copies_h2d += sum(op.bytes_moved for op in device.timeline
                          if op.kind == "h2d")
        copies_d2h += sum(op.bytes_moved for op in device.timeline
                          if op.kind == "d2h")
    assert m.counter("kernel.launches").value == kernels
    assert m.gauge("kernel.launches_per_step").value == kernels / N_STEPS
    assert m.counter("h2d.bytes").value == pytest.approx(copies_h2d)
    assert m.counter("d2h.bytes").value == pytest.approx(copies_d2h)
    assert m.gauge("pcie.bytes").value == pytest.approx(copies_h2d + copies_d2h)
    stats = machine.comm.stats
    assert m.counter("halo.bytes").value == stats.bytes_total
    assert m.counter("halo.messages").value == stats.messages
    assert (m.gauge("halo.bytes_per_step").value
            == pytest.approx(stats.bytes_total / N_STEPS))
    assert len(session.device_ops) == total_ops
    # modeled sustained GFlops: aggregate flops over the common makespan
    flops = sum(d.total_flops() for d in machine.devices)
    makespan = max(d.elapsed() for d in machine.devices)
    assert m.gauge("gflops.sustained").value == pytest.approx(
        flops / makespan / 1e9)
    assert m.gauge("gflops.sustained").value > 0


def test_flows_cover_message_log(traced_run):
    session, machine = traced_run
    assert len(session.flows) == len(machine.comm.message_log) > 0
    for f in session.flows:
        assert f.ts_dst >= f.ts_src >= 0.0
        assert f.src_pid.startswith("rank") and f.dst_pid.startswith("rank")


def test_summary_text_mentions_everything(traced_run):
    session, _ = traced_run
    text = summary_text(session)
    for token in ("warm-bubble-2x2", "rank0", "rank3", "kernel",
                  "halo traffic by rank pair", "gflops.sustained"):
        assert token in text, token


def test_single_device_gflops_matches_runtime():
    """Single-GPU traced run: the registry's sustained-GFlops gauge is
    exactly the runner's own report."""
    from repro.gpu.runtime import GpuAsucaRunner
    from repro.workloads.mountain_wave import make_mountain_wave_case

    case = make_mountain_wave_case(nx=16, ny=8, nz=10, dx=2000.0,
                                   ztop=12000.0, dt=4.0, ns=4)
    runner = GpuAsucaRunner(case.model)
    session = TraceSession("single")
    with use_session(session):
        runner.upload(case.state)
        st = runner.run(case.state, 2)
        runner.download(st)
    session.collect_device(runner.device, rank=0)
    session.finalize(steps=2)
    assert session.metrics.gauge("gflops.sustained").value == pytest.approx(
        runner.sustained_gflops())
