"""Bench regression gate: drift detection, tolerance overrides, and the
schema_version refusal contract."""
import importlib
import json
import pathlib
import sys

import pytest

from repro.obs.doctor import (
    BENCH_SCHEMA_VERSION,
    SchemaMismatch,
    compare_bench,
    regression_gate,
)

PAYLOAD = {
    "fifo": {"wait_s": {"p50": 0.08, "p95": 0.21}, "makespan_s": 1.375},
    "scaling": [{"gpus": 4, "tflops": 0.11}, {"gpus": 16, "tflops": 0.44}],
    "label": "seed0",
}


def _write(tmp_path, name, payload, version=BENCH_SCHEMA_VERSION):
    doc = dict(payload)
    if version is not None:
        doc["schema_version"] = version
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


def test_identical_artifacts_pass(tmp_path):
    a = _write(tmp_path, "a.json", PAYLOAD)
    b = _write(tmp_path, "b.json", PAYLOAD)
    report = regression_gate(a, b)
    assert report.ok and report.exit_status() == 0
    assert report.compared == 7          # numeric leaves, version excluded
    assert "OK" in report.text()


def test_injected_10pct_slowdown_fails(tmp_path):
    current = json.loads(json.dumps(PAYLOAD))
    current["fifo"]["makespan_s"] *= 1.10
    a = _write(tmp_path, "base.json", PAYLOAD)
    b = _write(tmp_path, "cur.json", current)
    report = regression_gate(a, b, rel_tol=0.05)
    assert not report.ok and report.exit_status() == 1
    (drift,) = report.drifts
    assert drift.path == "fifo.makespan_s" and drift.kind == "drift"
    assert drift.rel_change == pytest.approx(0.10)
    assert "DRIFT fifo.makespan_s" in report.text()


def test_schema_version_refusals(tmp_path):
    versioned = _write(tmp_path, "v.json", PAYLOAD)
    unversioned = _write(tmp_path, "u.json", PAYLOAD, version=None)
    other = _write(tmp_path, "o.json", PAYLOAD, version=BENCH_SCHEMA_VERSION + 1)
    with pytest.raises(SchemaMismatch, match="no schema_version"):
        regression_gate(versioned, unversioned)
    with pytest.raises(SchemaMismatch, match="mismatch"):
        regression_gate(versioned, other)


def test_tolerance_globs_override_and_ignore():
    baseline = {"a": {"slow": 1.0, "fast": 1.0}, "noise": 1.0}
    current = {"a": {"slow": 1.2, "fast": 1.2}, "noise": 5.0}
    drifts = compare_bench(baseline, current, rel_tol=0.05,
                           tolerances={"a.slow": 0.5, "noise": None})
    # a.slow within its widened tolerance, noise ignored, a.fast drifts
    assert [d.path for d in drifts] == ["a.fast"]
    # most-specific pattern wins over a broad wildcard
    drifts = compare_bench(baseline, current, rel_tol=0.05,
                           tolerances={"a.*": 0.01, "a.slow": 0.5,
                                       "noise": None})
    assert [d.path for d in drifts] == ["a.fast"]


def test_wall_clock_keys_are_ignored_by_default(tmp_path):
    baseline = {"modeled": {"makespan_s": 1.0},
                "wall": {"run_wall_s": 0.5, "handlers": {"pop": 0.1}}}
    current = {"modeled": {"makespan_s": 1.0},
               "wall": {"run_wall_s": 9.5, "handlers": {"pop": 7.0}}}
    a = _write(tmp_path, "a.json", baseline)
    b = _write(tmp_path, "b.json", current)
    assert regression_gate(a, b).ok              # wall drift invisible
    # strict mode (doctor --strict-wall) gates the wall keys again
    report = regression_gate(a, b, ignore_wall=False)
    assert not report.ok
    assert {d.path for d in report.drifts} == \
        {"wall.run_wall_s", "wall.handlers.pop"}
    # ...and deterministic drift still fails even in the default mode
    current["modeled"]["makespan_s"] = 2.0
    c = _write(tmp_path, "c.json", current)
    report = regression_gate(a, c)
    assert [d.path for d in report.drifts] == ["modeled.makespan_s"]


def test_explicit_wall_tolerance_overrides_the_default(tmp_path):
    a = _write(tmp_path, "a.json", {"wall": {"t": 1.0}})
    b = _write(tmp_path, "b.json", {"wall": {"t": 1.5}})
    # a user-supplied *wall* pattern replaces the implicit ignore
    report = regression_gate(a, b, tolerances={"*wall*": 0.1})
    assert not report.ok and report.drifts[0].path == "wall.t"


def test_structural_changes_are_flagged():
    drifts = compare_bench({"x": 1.0, "gone": 2.0, "s": "v", "l": [1, 2]},
                           {"x": 1.0, "new": 3.0, "s": "w", "l": [1]})
    kinds = {d.path: d.kind for d in drifts}
    assert kinds["gone"] == "missing"
    assert kinds["new"] == "added"
    assert kinds["s"] == "changed"
    assert kinds["l"] == "shape"


def test_write_bench_json_stamps_schema(tmp_path):
    bench_dir = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    try:
        bench_json = importlib.import_module("bench_json")
    finally:
        sys.path.remove(str(bench_dir))
    path = bench_json.write_bench_json("schema_probe", {"a": 1.0},
                                       report_dir=tmp_path)
    doc = json.loads(path.read_text())
    assert doc["schema_version"] == BENCH_SCHEMA_VERSION
    # stamped artifacts immediately satisfy the gate against themselves
    assert regression_gate(path, path).ok


def test_checked_in_artifacts_are_versioned():
    reports = (pathlib.Path(__file__).resolve().parents[2]
               / "benchmarks" / "reports")
    artifacts = sorted(reports.glob("BENCH_*.json"))
    assert artifacts, "no checked-in bench artifacts found"
    for path in artifacts:
        doc = json.loads(path.read_text())
        assert doc.get("schema_version") == BENCH_SCHEMA_VERSION, path
