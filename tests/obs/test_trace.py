"""Tests of the tracing core: sessions, spans, the profile_phase shim,
and the zero-cost guarantee when no session is active."""
import time

from repro.obs import TraceSession, active_session, span, use_session
from repro.profiling import PhaseTimer, profile_phase, use_timer


def test_span_noop_without_session():
    with span("anything"):
        x = 1 + 1
    assert x == 2
    assert active_session() is None


def test_span_records_with_session():
    s = TraceSession("t")
    with use_session(s):
        assert active_session() is s
        with span("outer", cat="phase", grid="16x16"):
            with span("inner"):
                pass
    assert [r.name for r in s.spans] == ["inner", "outer"]
    outer = s.spans[1]
    inner = s.spans[0]
    assert outer.args == {"grid": "16x16"}
    # nesting: the inner span is contained in the outer one
    assert outer.ts <= inner.ts
    assert inner.ts + inner.dur <= outer.ts + outer.dur + 1e-6


def test_sessions_nest_lifo():
    a, b = TraceSession("a"), TraceSession("b")
    with use_session(a):
        with span("x"):
            pass
        with use_session(b):
            with span("y"):
                pass
        with span("z"):
            pass
    assert [r.name for r in a.spans] == ["x", "z"]
    assert [r.name for r in b.spans] == ["y"]


def test_profile_phase_shim_feeds_both_timer_and_session():
    """The existing profile_phase instrumentation doubles as the span
    source: one call site charges the timer AND records a span."""
    s = TraceSession("t")
    timer = PhaseTimer()
    with use_session(s), use_timer(timer):
        with profile_phase("advect"):
            pass
    assert timer.calls["advect"] == 1
    assert [r.name for r in s.spans] == ["advect"]
    assert s.spans[0].cat == "phase"


def test_profile_phase_session_only():
    s = TraceSession("t")
    with use_session(s):
        with profile_phase("p"):
            pass
    assert len(s.spans) == 1


def test_instant_and_rebase():
    s = TraceSession("t")
    rec = s.record_instant("marker")
    assert rec.ts >= 0
    assert s.rebase(s.epoch - 5.0) == 0.0  # pre-session stamps clamp to 0
    assert s.rebase(s.epoch + 1.0) == 1.0


def test_zero_cost_when_inactive():
    """With no session and no timer, profile_phase/span must stay a
    two-list-check no-op: 20k traversals in well under half a second."""
    t0 = time.perf_counter()
    for _ in range(20_000):
        with profile_phase("hot"):
            pass
        with span("hot"):
            pass
    assert time.perf_counter() - t0 < 0.5
