"""Tests of the metrics registry."""
import pytest

from repro.obs import MetricsRegistry, MetricTypeConflict
from repro.obs.metrics import percentile_summary


def test_counter_get_or_create_and_inc():
    m = MetricsRegistry()
    c = m.counter("kernel.launches")
    assert c is m.counter("kernel.launches")
    c.inc()
    c.inc(4)
    assert m.counter("kernel.launches").value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_write_wins():
    m = MetricsRegistry()
    m.gauge("gflops").set(12.5)
    m.gauge("gflops").set(44.3)
    assert m.gauge("gflops").value == 44.3


def test_histogram_summary():
    m = MetricsRegistry()
    h = m.histogram("dur")
    for v in (1.0, 3.0, 2.0):
        h.observe(v)
    s = h.summary()
    assert s["count"] == 3
    assert s["min"] == 1.0 and s["max"] == 3.0
    assert s["mean"] == pytest.approx(2.0)
    assert m.histogram("empty").summary()["count"] == 0


def test_histogram_quantiles_are_log_bucket_accurate():
    m = MetricsRegistry()
    h = m.histogram("lat")
    values = [0.001 * (i + 1) for i in range(1000)]
    for v in values:
        h.observe(v)
    s = h.summary()
    # 8 buckets per octave: representatives land within one half-bucket,
    # i.e. a relative error of at most 2**(1/16) - 1 (~4.4%)
    tol = 2 ** (1 / 16) - 1
    assert s["p50"] == pytest.approx(0.500, rel=tol)
    assert s["p95"] == pytest.approx(0.950, rel=tol)
    assert s["p99"] == pytest.approx(0.990, rel=tol)
    assert s["min"] == 0.001 and s["max"] == 1.0
    assert h.quantile(100) == 1.0


def test_histogram_quantiles_are_order_independent():
    a, b = MetricsRegistry(), MetricsRegistry()
    values = [0.5, 8.0, 0.01, 2.0, 1.0, 64.0, 0.25]
    for v in values:
        a.histogram("h").observe(v)
    for v in reversed(values):
        b.histogram("h").observe(v)
    assert a.histogram("h").summary() == b.histogram("h").summary()


def test_histogram_nonpositive_values_count_at_the_bottom():
    m = MetricsRegistry()
    h = m.histogram("h")
    for v in (-1.0, 0.0, 5.0):
        h.observe(v)
    s = h.summary()
    assert s["count"] == 3
    assert s["min"] == -1.0
    assert h.quantile(50) == -1.0        # nonpositives rank first, at min
    assert h.quantile(99) == pytest.approx(5.0, rel=2 ** (1 / 16) - 1)


def test_cross_type_name_reuse_raises_a_typed_error():
    m = MetricsRegistry()
    m.counter("x")
    with pytest.raises(MetricTypeConflict, match="x.*counter"):
        m.gauge("x")
    with pytest.raises(MetricTypeConflict):
        m.histogram("x")
    m.gauge("g")
    with pytest.raises(MetricTypeConflict):
        m.counter("g")
    assert issubclass(MetricTypeConflict, TypeError)


def test_percentile_summary_reports_p99():
    s = percentile_summary(float(i) for i in range(1, 101))
    assert set(s) == {"mean", "p50", "p95", "p99", "max"}
    assert s["p95"] <= s["p99"] <= s["max"] == 100.0
    assert s["p99"] == pytest.approx(99.0, abs=0.1)
    assert percentile_summary([])["p99"] == 0.0


def test_as_dict_and_report():
    m = MetricsRegistry()
    m.counter("halo.bytes").inc(1024)
    m.gauge("steps").set(3)
    m.histogram("d").observe(0.5)
    d = m.as_dict()
    assert d["counters"]["halo.bytes"] == 1024
    assert d["gauges"]["steps"] == 3
    assert d["histograms"]["d"]["count"] == 1
    rep = m.report()
    assert "halo.bytes" in rep and "steps" in rep and "counter" in rep
