"""Tests of the metrics registry."""
import pytest

from repro.obs import MetricsRegistry


def test_counter_get_or_create_and_inc():
    m = MetricsRegistry()
    c = m.counter("kernel.launches")
    assert c is m.counter("kernel.launches")
    c.inc()
    c.inc(4)
    assert m.counter("kernel.launches").value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_write_wins():
    m = MetricsRegistry()
    m.gauge("gflops").set(12.5)
    m.gauge("gflops").set(44.3)
    assert m.gauge("gflops").value == 44.3


def test_histogram_summary():
    m = MetricsRegistry()
    h = m.histogram("dur")
    for v in (1.0, 3.0, 2.0):
        h.observe(v)
    s = h.summary()
    assert s["count"] == 3
    assert s["min"] == 1.0 and s["max"] == 3.0
    assert s["mean"] == pytest.approx(2.0)
    assert m.histogram("empty").summary()["count"] == 0


def test_as_dict_and_report():
    m = MetricsRegistry()
    m.counter("halo.bytes").inc(1024)
    m.gauge("steps").set(3)
    m.histogram("d").observe(0.5)
    d = m.as_dict()
    assert d["counters"]["halo.bytes"] == 1024
    assert d["gauges"]["steps"] == 3
    assert d["histograms"]["d"]["count"] == 1
    rep = m.report()
    assert "halo.bytes" in rep and "steps" in rep and "counter" in rep
