"""Round-trip tests: what the exporters write, the doctor reads back.

Counters recorded on a session must survive the Chrome-trace 'C'-event
encoding and the JSONL stream; device ops must come back close enough
(the CTF microsecond rounding is 1e-9 s) that a post-hoc diagnosis of
the artifact agrees with the live-timeline diagnosis within 1%."""
import pytest

from repro.dist.overlap import method_timelines
from repro.gpu.device import GPUDevice
from repro.obs import TraceSession, write_chrome_trace, write_jsonl
from repro.obs.doctor import diagnose_ops, diagnose_trace, load_trace

SAMPLES = [(0.0, 0.0), (0.125, 3.0), (0.25, 7.0), (0.375, 2.5), (0.5, 0.0)]


@pytest.fixture()
def session():
    s = TraceSession(name="roundtrip")
    for t, v in SAMPLES:
        s.record_counter("queue.depth", v, t, pid="service")
    return s


def _assert_counters_match(loaded):
    series = loaded.counter_series("queue.depth", pid="service")
    assert len(series) == len(SAMPLES)
    for (t0, v0), (t1, v1) in zip(SAMPLES, series):
        assert t1 == pytest.approx(t0, abs=1e-9)
        assert v1 == pytest.approx(v0)


def test_counter_round_trip_chrome(session, tmp_path):
    path = write_chrome_trace(session, tmp_path / "t.json")
    _assert_counters_match(load_trace(str(path)))


def test_counter_round_trip_jsonl(session, tmp_path):
    path = write_jsonl(session, tmp_path / "t.jsonl")
    _assert_counters_match(load_trace(str(path)))


def test_device_ops_round_trip(tmp_path):
    """Ops collected from a device come back with their kinds, tags and
    (to CTF rounding) their timestamps."""
    dev = GPUDevice()
    s0, s1 = dev.default_stream, dev.create_stream()
    dev.schedule("A", "kernel", s0, 1e-3)
    dev.schedule("H", "h2d", s1, 4e-4)
    dev.schedule("M", "mpi", s1, 8e-4, tag="halo")

    session = TraceSession(name="ops")
    session.collect_device(dev, rank=0)
    path = write_chrome_trace(session, tmp_path / "ops.json")

    loaded = load_trace(str(path))
    assert list(loaded.device_ops) == ["rank0"]
    ops = loaded.device_ops["rank0"]
    assert {(o.name, o.kind) for o in ops} == {
        ("A", "kernel"), ("H", "h2d"), ("M", "mpi")}
    by_name = {o.name: o for o in ops}
    assert by_name["M"].tag == "halo"
    assert by_name["M"].ts == pytest.approx(4e-4, abs=1e-9)
    assert by_name["M"].dur == pytest.approx(8e-4, abs=1e-9)


def test_trace_diagnosis_matches_live_within_1pct(tmp_path):
    """Acceptance criterion: diagnosing the exported artifact of the
    full-overlap model step reproduces the live per-kernel attribution
    and overlap efficiency within 1%."""
    tl = method_timelines(methods=["method1+2+3"])["method1+2+3"]
    live = diagnose_ops(tl.device.timeline)

    session = TraceSession(name="overlap")
    session.collect_device(tl.device, rank=0)
    path = write_chrome_trace(session, tmp_path / "overlap.json")
    report = diagnose_trace(str(path))

    assert len(report.devices) == 1
    post = report.devices[0]
    assert post.stats.hidden_fraction == pytest.approx(
        live.stats.hidden_fraction, rel=0.01)
    assert post.stats.makespan == pytest.approx(live.stats.makespan,
                                                rel=0.01)
    assert post.path.coverage == pytest.approx(live.path.coverage, abs=0.01)
    live_rows = {r.name: r.total for r in live.rows}
    post_rows = {r.name: r.total for r in post.rows}
    assert set(post_rows) == set(live_rows)
    for name, total in live_rows.items():
        assert post_rows[name] == pytest.approx(total, rel=0.01)
    assert report.verdict is not None


def test_diagnose_trace_screens_counter_anomalies(tmp_path):
    """A flat counter series with one spike past warmup trips the EWMA
    screen; the anomaly carries the metric's track-qualified name."""
    session = TraceSession(name="anomaly")
    for i in range(40):
        session.record_counter("queue.depth", 2.0 + (i % 2) * 0.1,
                               i * 0.1, pid="service")
    session.record_counter("queue.depth", 50.0, 4.0, pid="service")
    path = write_jsonl(session, tmp_path / "a.jsonl")

    report = diagnose_trace(str(path), anomaly_sigma=6.0)
    assert any(a["metric"] == "service/queue.depth"
               for a in report.anomalies)
    assert "service/queue.depth" in report.counters


def test_load_trace_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError):
        load_trace(str(bad))
    empty = tmp_path / "empty.json"
    empty.write_text("")
    with pytest.raises(ValueError):
        load_trace(str(empty))
