"""The ``repro doctor`` subcommand and the serve ``--slo`` flag: the
shared exit-code convention (0 clean, 1 findings/alerts, 2 usage
errors) across all three doctor modes."""
import json

import pytest

from repro.cli import main

FAST_SERVE = ["serve", "--jobs", "10", "--gpus", "4", "--no-execute"]

JSONL_TRACE = "\n".join([
    '{"type": "session", "name": "toy"}',
    '{"type": "device_op", "pid": "rank0", "tid": "stream0",'
    ' "name": "A", "kind": "kernel", "ts": 0.0, "dur": 0.001}',
    '{"type": "device_op", "pid": "rank0", "tid": "stream1",'
    ' "name": "H", "kind": "h2d", "ts": 0.0, "dur": 0.0004}',
    '{"type": "counter", "pid": "service", "name": "queue.depth",'
    ' "ts": 0.0, "value": 3.0}',
]) + "\n"


def test_doctor_model_mode_clean(capsys):
    assert main(["doctor"]) == 0
    out = capsys.readouterr().out
    assert "perf doctor — model analysis" in out
    assert "verdict" in out and "hidden" in out


def test_doctor_json_reports_paper_overlap(capsys):
    assert main(["doctor", "--ranks", "24x22", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    assert doc["hidden_fraction"] == pytest.approx(0.548, abs=0.01)
    assert doc["verdict"]["method_totals_s"]


def test_doctor_min_hidden_gate(capsys):
    assert main(["doctor", "--ranks", "2x2", "--min-hidden", "0.05"]) == 0
    capsys.readouterr()
    assert main(["doctor", "--ranks", "2x2", "--min-hidden", "0.99"]) == 1
    assert "FINDING" in capsys.readouterr().out


def test_doctor_usage_errors(tmp_path, capsys):
    assert main(["doctor", "--ranks", "notagrid"]) == 2
    assert main(["doctor", "--trace", str(tmp_path / "missing.json")]) == 2
    assert main(["doctor", "--regress", str(tmp_path / "x.json")]) == 2
    err = capsys.readouterr().err
    assert "doctor:" in err and "--baseline" in err


def test_doctor_trace_mode(tmp_path, capsys):
    trace = tmp_path / "toy.jsonl"
    trace.write_text(JSONL_TRACE)
    assert main(["doctor", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "trace analysis" in out and "rank0" in out
    assert "queue.depth" in out


def test_doctor_regress_gate(tmp_path, capsys):
    base = {"makespan_s": 1.0, "schema_version": 1}
    (tmp_path / "base.json").write_text(json.dumps(base))
    (tmp_path / "same.json").write_text(json.dumps(base))
    slow = dict(base, makespan_s=1.1)
    (tmp_path / "slow.json").write_text(json.dumps(slow))
    unversioned = {"makespan_s": 1.0}
    (tmp_path / "unversioned.json").write_text(json.dumps(unversioned))

    common = ["doctor", "--baseline", str(tmp_path / "base.json")]
    assert main([*common, "--regress", str(tmp_path / "same.json")]) == 0
    assert main([*common, "--regress", str(tmp_path / "slow.json")]) == 1
    assert "DRIFT makespan_s" in capsys.readouterr().out
    assert main([*common, "--regress",
                 str(tmp_path / "unversioned.json")]) == 2
    assert "schema_version" in capsys.readouterr().err
    # a widened per-metric tolerance lets the same drift pass
    assert main([*common, "--regress", str(tmp_path / "slow.json"),
                 "--tolerance", "makespan_s=0.5"]) == 0
    # malformed tolerance is a usage error
    assert main([*common, "--regress", str(tmp_path / "slow.json"),
                 "--tolerance", "nonsense"]) == 2


ROOFLINE_FAST = ["doctor", "--roofline", "--steps", "1"]


def test_doctor_roofline_clean(capsys):
    assert main(ROOFLINE_FAST) == 0
    out = capsys.readouterr().out
    assert "live roofline" in out and "ridge" in out
    assert "warm_rain" in out and "coord_transform" in out
    assert "0 drift error(s)" in out


def test_doctor_roofline_json_ranking(capsys):
    assert main([*ROOFLINE_FAST, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    assert doc["measured_ops"] == doc["total_ops"] > 0
    by_name = {k["name"]: k for k in doc["kernels"]}
    # kernels come sorted by achieved GFlops; the paper's extremes hold
    # among the five Fig. 5 kernels
    five = ["coord_transform", "pgf_x", "advection", "helmholtz",
            "warm_rain"]
    achieved = {n: by_name[n]["achieved_gflops"] for n in five}
    assert achieved["coord_transform"] == min(achieved.values())
    assert achieved["warm_rain"] == max(achieved.values())
    assert by_name["warm_rain"]["intensity"] > doc["ridge"]


def test_doctor_roofline_seed_drift_gates(capsys):
    """The hidden drift injector proves the ROOF01 gate has teeth."""
    assert main([*ROOFLINE_FAST, "--seed-drift", "advection:25"]) == 1
    assert "ROOF01" in capsys.readouterr().out
    assert main([*ROOFLINE_FAST, "--seed-drift", "nonsense"]) == 2
    assert main([*ROOFLINE_FAST, "--seed-drift", "no_such_kernel:2"]) == 2


def test_doctor_roofline_counted_trace_roundtrip(tmp_path, capsys):
    trace = tmp_path / "counted.jsonl"
    assert main(["run", "shear-layer", "--nx", "16", "--ny", "16",
                 "--nz", "12", "--steps", "1", "--counters",
                 "--trace-jsonl", str(trace)]) == 0
    assert "counters:" in capsys.readouterr().out
    assert main(["doctor", "--roofline", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "live roofline" in out and "0 drift error(s)" in out


def test_doctor_roofline_uncounted_trace_is_usage_error(tmp_path, capsys):
    trace = tmp_path / "uncounted.jsonl"
    trace.write_text(JSONL_TRACE)
    assert main(["doctor", "--roofline", "--trace", str(trace)]) == 2
    assert "--counters" in capsys.readouterr().err


def test_serve_slo_exit_codes(capsys):
    assert main([*FAST_SERVE, "--slo", "p95_wait_s<1e9"]) == 0
    assert "all objectives met" in capsys.readouterr().out
    assert main([*FAST_SERVE, "--slo", "queue_depth<1"]) == 1
    assert "ALERT [slo]" in capsys.readouterr().out
    assert main([*FAST_SERVE, "--slo", "queue_depth!!1"]) == 2
    assert "serve:" in capsys.readouterr().err


def test_exit_codes_documented_in_help(capsys):
    for cmd in ("trace", "analyze", "doctor", "serve"):
        with pytest.raises(SystemExit):
            main([cmd, "--help"])
        assert "exit codes: 0 = clean" in capsys.readouterr().out
