"""Perf-doctor unit tests: critical-path reconstruction on hand-built
device schedules, overlap accounting against the modeled StepTimeline
(exact agreement by construction), and the pinned Fig. 11 hidden-
communication fractions for each overlap method."""
import pytest

from repro.dist.overlap import METHOD_CONFIGS, method_timelines
from repro.gpu.device import GPUDevice
from repro.obs.doctor import (
    attribution,
    critical_path,
    diagnose_model,
    diagnose_ops,
    overlap_stats,
)
from repro.obs.doctor.critical_path import base_name

#: Fig. 11-shaped hidden-communication fractions of the model at the
#: paper configuration (interior rank, 320x256x48 mesh); method1+2+3
#: reproduces the paper's "roughly 53%" claim
PINNED_HIDDEN = {
    "serial": 0.0,
    "method1": 0.073,
    "method1+2": 0.551,
    "method1+2+3": 0.548,
}


@pytest.fixture(scope="module")
def timelines():
    return method_timelines()


# ----------------------------------------------------- binding-chain walk
def test_critical_path_follows_dependency_edge():
    """A kernel waiting on an MPI event binds via 'dep', the MPI op via
    stream program order, and the chain covers the whole makespan."""
    dev = GPUDevice()
    s0, s1 = dev.default_stream, dev.create_stream()
    dev.schedule("A", "kernel", s0, 1.0)          # 0.0 .. 1.0
    dev.schedule("H", "h2d", s1, 0.4)             # 0.0 .. 0.4
    dev.schedule("M", "mpi", s1, 0.8)             # 0.4 .. 1.2
    ev = s1.record_event()
    dev.schedule("B", "kernel", s0, 0.5, after=(ev,))   # 1.2 .. 1.7

    path = critical_path(dev.timeline)
    assert [s.name for s in path.segments] == ["H", "M", "B"]
    assert [s.via for s in path.segments] == ["root", "stream", "dep"]
    assert path.makespan == pytest.approx(1.7)
    assert path.coverage == pytest.approx(1.0)
    assert path.time_by_kind == pytest.approx(
        {"h2d": 0.4, "mpi": 0.8, "kernel": 0.5})


def test_critical_path_reconstructs_barrier_front():
    """After device.synchronize() a copy with no stream/engine/dep
    predecessor still binds — to the op that defined the barrier."""
    dev = GPUDevice()
    s0, s1 = dev.default_stream, dev.create_stream()
    dev.schedule("A", "kernel", s0, 1.0)
    dev.synchronize()
    dev.schedule("C", "h2d", s1, 0.5)             # starts at the barrier

    path = critical_path(dev.timeline)
    assert [s.name for s in path.segments] == ["A", "C"]
    assert [s.via for s in path.segments] == ["root", "barrier"]
    assert path.coverage == pytest.approx(1.0)


def test_attribution_groups_variables_and_tracers():
    """Fig. 9 grouping: the ':' role suffix is dropped and the qNN water
    tracers collapse into one row; serial ops are fully on-path."""
    assert base_name("Density:bnd-x") == "Density"
    assert base_name("q11:inner") == "Water tracers"

    dev = GPUDevice()
    s0 = dev.default_stream
    dev.schedule("Density:inner", "kernel", s0, 2.0)
    dev.schedule("Density:bnd-x", "kernel", s0, 1.0)
    dev.schedule("q1:inner", "kernel", s0, 1.0)
    dev.schedule("q2:inner", "kernel", s0, 1.5)

    rows = attribution(dev.timeline, critical_path(dev.timeline))
    assert [r.name for r in rows] == ["Density", "Water tracers"]
    assert rows[0].calls == 2 and rows[0].total == pytest.approx(3.0)
    assert rows[1].calls == 2 and rows[1].total == pytest.approx(2.5)
    for r in rows:                      # serial schedule: all exposed
        assert r.on_path == pytest.approx(r.total)


# ------------------------------------------- agreement with dist/overlap
@pytest.mark.parametrize("method", sorted(METHOD_CONFIGS))
def test_overlap_stats_match_step_timeline_exactly(timelines, method):
    """The doctor's accounting over the model's own device timeline must
    reproduce the StepTimeline aggregates to machine precision."""
    tl = timelines[method]
    st = overlap_stats(tl.device.timeline, makespan=tl.device.elapsed())
    assert st.makespan == pytest.approx(tl.total, rel=1e-12)
    assert st.compute == pytest.approx(tl.compute, rel=1e-12)
    assert st.mpi == pytest.approx(tl.mpi, rel=1e-12)
    assert st.gpu_cpu == pytest.approx(tl.gpu_cpu, rel=1e-12)
    assert st.skew == pytest.approx(tl.sync_skew, rel=1e-12)
    assert st.hidden_fraction == pytest.approx(tl.hidden_fraction,
                                               rel=1e-12, abs=1e-12)


@pytest.mark.parametrize("method", sorted(PINNED_HIDDEN))
def test_hidden_fraction_pinned_to_fig11(timelines, method):
    st = overlap_stats(timelines[method].device.timeline)
    assert st.hidden_fraction == pytest.approx(PINNED_HIDDEN[method],
                                               abs=0.01)


def test_full_overlap_hides_paper_fraction(timelines):
    """Acceptance anchor: method1+2+3 hides ~53% of communication."""
    st = overlap_stats(timelines["method1+2+3"].device.timeline)
    assert st.hidden_fraction == pytest.approx(0.53, rel=0.15)
    # excluding barrier skew, communication is almost completely hidden
    assert st.hidden_fraction_comm_only > 0.85


def test_critical_path_covers_model_step(timelines):
    """The walk explains the model's whole makespan — nothing on the
    schedule starts without a recoverable reason."""
    diag = diagnose_ops(timelines["method1+2+3"].device.timeline)
    assert diag.path.coverage == pytest.approx(1.0, abs=1e-6)
    assert diag.bottleneck in ("compute", "exposed communication",
                               "barrier skew", "idle")
    names = {r.name for r in diag.rows}
    assert "Water tracers" in names and "Helmholtz-like eq." in names


# ------------------------------------------------------------ model mode
def test_diagnose_model_is_self_consistent():
    report = diagnose_model()
    assert report.ok, report.findings
    assert max(report.consistency.values()) < 0.01
    assert set(report.verdict.method_totals) == set(METHOD_CONFIGS)
    assert report.hidden_fraction == pytest.approx(0.548, abs=0.01)
    # the gate flips the exit status without touching the diagnosis
    assert report.exit_status() == 0
    assert report.require_min_hidden(0.99).exit_status() == 1


def test_diagnose_model_rejects_unknown_method():
    with pytest.raises(ValueError, match="unknown overlap method"):
        diagnose_model(method="method4")


def test_cli_method_choices_mirror_model():
    from repro.cli import _METHODS

    assert sorted(_METHODS) == sorted(METHOD_CONFIGS)
