"""Fault plans, the injector, and fault-injected halo exchanges."""
import numpy as np
import pytest

from repro.core.grid import make_grid
from repro.core.model import ModelConfig
from repro.core.reference import make_reference_state
from repro.core.state import state_from_reference
from repro.dist.multigpu import MultiGpuAsuca
from repro.resilience.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RankCrash,
)
from repro.resilience.retry import RetryExhaustedError, RetryPolicy
from repro.workloads.sounding import constant_stability_sounding


# ------------------------------------------------------------------- plans
class TestFaultPlan:
    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.random(seed=42, n_steps=30, n_ranks=4)
        b = FaultPlan.random(seed=42, n_steps=30, n_ranks=4)
        assert a.events == b.events
        c = FaultPlan.random(seed=43, n_steps=30, n_ranks=4)
        assert a.events != c.events

    def test_parse_named_plans(self):
        assert len(FaultPlan.parse(None)) == 0
        assert len(FaultPlan.parse("none")) == 0
        demo = FaultPlan.parse("demo")
        assert {ev.kind for ev in demo.events} == set(FaultKind)
        rnd = FaultPlan.parse("random:7")
        assert rnd.events == FaultPlan.random(seed=7, n_steps=50,
                                              n_ranks=4).events

    def test_parse_compact_items(self):
        plan = FaultPlan.parse("drop@1,corrupt@2:0>1,crash@3:r2,"
                               "delay@4:m0.01,drop@5:x3")
        kinds = [ev.kind for ev in plan.events]
        assert kinds == [FaultKind.DROP, FaultKind.CORRUPT, FaultKind.CRASH,
                         FaultKind.DELAY, FaultKind.DROP]
        assert plan.events[1].src == 0 and plan.events[1].dst == 1
        assert plan.events[2].rank == 2
        assert plan.events[3].magnitude == pytest.approx(0.01)
        assert plan.events[4].count == 3

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("drop@1:z9")
        with pytest.raises(ValueError):
            FaultPlan.parse("explode@1")

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.DROP, step=-1)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.DROP, step=0, count=0)


# ---------------------------------------------------------------- injector
class TestFaultInjector:
    def test_count_consumption(self):
        inj = FaultInjector(FaultPlan(
            events=[FaultEvent(FaultKind.DROP, step=0, count=2)]))
        inj.begin_step(0)
        assert inj.on_message(0, 1) is not None
        assert inj.on_message(0, 1) is not None
        assert inj.on_message(0, 1) is None       # count exhausted
        assert inj.pending() == 0
        assert inj.counts == {"drop": 2}

    def test_step_and_pair_filters(self):
        inj = FaultInjector(FaultPlan(events=[
            FaultEvent(FaultKind.DROP, step=2, src=0, dst=1)]))
        inj.begin_step(1)
        assert inj.on_message(0, 1) is None       # wrong step
        inj.begin_step(2)
        assert inj.on_message(1, 0) is None       # wrong pair
        assert inj.on_message(0, 1) is not None

    def test_crash_consumed_on_replay(self):
        inj = FaultInjector(FaultPlan(events=[
            FaultEvent(FaultKind.CRASH, step=3, rank=1)]))
        assert inj.crash_rank(3) == 1
        assert inj.crash_rank(3) is None          # a resumed run passes

    def test_pcie_matches_device_label(self):
        inj = FaultInjector(FaultPlan(events=[
            FaultEvent(FaultKind.PCIE, step=0, rank=3)]))
        inj.begin_step(0)
        assert not inj.on_pcie("rank0")
        assert inj.on_pcie("rank3")


# ------------------------------------------- fault-injected halo exchange
def _machine_and_state(plan=None, retry=None, px=2, py=2, seed=0,
                       amplitude=1.0):
    """A 2-D-decomposed machine plus a perturbed global state.

    ``amplitude=1.0`` gives arbitrary random fields (fine for exchange
    tests); stepping tests pass a small amplitude so the state stays
    inside the integrator's validity range."""
    g = make_grid(nx=12, ny=9, nz=4, dx=500.0, dy=500.0, ztop=4000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    injector = FaultInjector(plan) if plan is not None else None
    machine = MultiGpuAsuca(g, ref, px, py, ModelConfig(),
                            fault_injector=injector, retry=retry)
    gstate = state_from_reference(g, ref)
    r = np.random.default_rng(seed)
    for name in gstate.prognostic_names():
        arr = gstate.get(name)
        arr += amplitude * r.normal(size=arr.shape)
    return machine, gstate


class TestFaultyExchange:
    @pytest.mark.parametrize("spec", ["drop@0", "corrupt@0", "delay@0",
                                      "drop@0:x2,corrupt@0,delay@0:m0.5"])
    def test_exchange_converges_to_fault_free_answer(self, spec):
        """Halos exchanged over a faulty transport, recovered under the
        retry policy, are bit-identical to the fault-free exchange."""
        clean, gstate = _machine_and_state()
        faulty, _ = _machine_and_state(plan=FaultPlan.parse(spec))
        faulty.faults.begin_step(0)

        ref_states = clean.scatter_state(gstate)
        clean.exchange_all(ref_states, None)
        states = faulty.scatter_state(gstate)
        faulty.exchange_all(states, None)

        assert faulty.comm.pending() == 0
        for a, b in zip(ref_states, states):
            for name in a.prognostic_names():
                np.testing.assert_array_equal(a.get(name), b.get(name),
                                              err_msg=name)
        assert len(faulty.faults.fired) >= 1
        assert faulty.exchanger.stats.recovery_s > 0.0

    def test_short_delay_is_waited_out_not_retried(self):
        machine, gstate = _machine_and_state(
            plan=FaultPlan.parse("delay@0:m0.001"),
            retry=RetryPolicy(timeout=0.02))
        machine.faults.begin_step(0)
        states = machine.scatter_state(gstate)
        machine.exchange_all(states, None)
        s = machine.exchanger.stats
        assert s.waits == 1 and s.timeouts == 0 and s.retransmits == 0
        assert s.wait_s == pytest.approx(0.001)

    def test_long_delay_times_out_and_retries(self):
        machine, gstate = _machine_and_state(
            plan=FaultPlan.parse("delay@0:m0.5"),
            retry=RetryPolicy(timeout=0.02))
        machine.faults.begin_step(0)
        states = machine.scatter_state(gstate)
        machine.exchange_all(states, None)
        s = machine.exchanger.stats
        assert s.timeouts == 1 and s.retries >= 1

    def test_retry_exhaustion(self):
        """More drops of one message than the policy allows is fatal."""
        machine, gstate = _machine_and_state(
            plan=FaultPlan(events=[
                FaultEvent(FaultKind.DROP, step=0, src=0, dst=1, count=50)]),
            retry=RetryPolicy(max_retries=2))
        machine.faults.begin_step(0)
        states = machine.scatter_state(gstate)
        with pytest.raises(RetryExhaustedError):
            machine.exchange_all(states, None)

    def test_crash_raises_rank_crash(self):
        machine, gstate = _machine_and_state(
            plan=FaultPlan.parse("crash@1:r2"), amplitude=1e-3)
        states = machine.scatter_state(gstate)
        machine.exchange_all(states, None)
        states = machine.step(states)
        with pytest.raises(RankCrash) as exc:
            machine.step(states)
        assert exc.value.rank == 2 and exc.value.step == 1

    def test_stepped_run_with_faults_matches_clean_run(self):
        """Two model steps over a faulty-but-recovered transport equal the
        fault-free run bit for bit."""
        clean, gstate = _machine_and_state(amplitude=1e-3)
        faulty, _ = _machine_and_state(
            plan=FaultPlan.parse("drop@0,corrupt@1,delay@1"),
            amplitude=1e-3)

        a = clean.scatter_state(gstate)
        clean.exchange_all(a, None)
        b = faulty.scatter_state(gstate)
        faulty.exchange_all(b, None)
        for _ in range(2):
            a = clean.run(a, 1)
            b = faulty.run(b, 1)
        ga, gb = clean.gather_state(a), faulty.gather_state(b)
        for name in ga.prognostic_names():
            np.testing.assert_array_equal(ga.get(name), gb.get(name),
                                          err_msg=name)
        assert len(faulty.faults.fired) == 3
