"""RetryPolicy backoff schedule and validation."""
import pytest

from repro.resilience.retry import (
    HaloMessageError,
    MessageDelayedError,
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
)


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        p = RetryPolicy(backoff_base=1e-3, backoff_factor=2.0, backoff_max=1.0)
        assert p.backoff(0) == pytest.approx(1e-3)
        assert p.backoff(1) == pytest.approx(2e-3)
        assert p.backoff(3) == pytest.approx(8e-3)

    def test_backoff_caps_at_max(self):
        p = RetryPolicy(backoff_base=1e-3, backoff_factor=10.0,
                        backoff_max=5e-3)
        assert p.backoff(10) == 5e-3

    def test_schedule_lists_every_attempt(self):
        p = RetryPolicy(max_retries=3)
        sched = p.schedule()
        assert len(sched) == 3
        assert sched == [p.backoff(k) for k in range(3)]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1e-3)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestRetryStats:
    def test_recovery_time_sums_backoff_and_waits(self):
        s = RetryStats()
        s.backoff_s = 0.25
        s.wait_s = 0.75
        assert s.recovery_s == 1.0
        assert "0 retransmits" in s.report()

    def test_error_hierarchy(self):
        err = MessageDelayedError("late", src=0, dst=1, tag="t", delay=0.01)
        assert isinstance(err, HaloMessageError)
        assert err.delay == 0.01
        exc = RetryExhaustedError("gave up", attempts=4, last_error=err)
        assert exc.attempts == 4
        assert exc.last_error is err
