"""Checkpoint-restart: atomicity, pruning, and bit-identical resumes."""
import numpy as np
import pytest

from repro.core.model import AsucaModel, ModelConfig
from repro.resilience.checkpoint import CheckpointManager
from repro.workloads.warm_bubble import make_warm_bubble_case


@pytest.fixture(scope="module")
def case():
    return make_warm_bubble_case(nx=12, ny=12, nz=10)


def _fresh_state(case):
    return case.model.initial_state()


# ------------------------------------------------------------- bookkeeping
class TestManager:
    def test_due_cadence(self, tmp_path):
        m = CheckpointManager(tmp_path, every=3)
        assert [s for s in range(1, 10) if m.due(s)] == [3, 6, 9]
        assert not CheckpointManager(tmp_path).due(3)   # every=0 disables
        assert not m.due(0)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every=-1)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)

    def test_save_load_roundtrip_single_rank(self, tmp_path, case):
        m = CheckpointManager(tmp_path)
        st = _fresh_state(case)
        m.save(5, st)
        assert m.latest_step() == 5
        ckpt = m.load([case.grid])
        assert ckpt.step == 5
        assert len(ckpt.states) == 1
        for name in st.prognostic_names():
            np.testing.assert_array_equal(ckpt.states[0].get(name),
                                          st.get(name), err_msg=name)
        assert ckpt.states[0].time == st.time
        assert ckpt.meta["phase"] == "long_step_boundary"

    def test_no_tmp_files_left_behind(self, tmp_path, case):
        m = CheckpointManager(tmp_path)
        m.save(1, _fresh_state(case))
        assert not list(tmp_path.glob("*.tmp"))
        assert (tmp_path / "latest").read_text().strip() == "1"

    def test_prune_keeps_newest(self, tmp_path, case):
        m = CheckpointManager(tmp_path, keep=2)
        st = _fresh_state(case)
        for step in (1, 2, 3, 4):
            m.save(step, st)
        archives = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        assert archives == ["ckpt-00000003.npz", "ckpt-00000004.npz"]
        assert m.latest_step() == 4

    def test_latest_falls_back_to_archive_scan(self, tmp_path, case):
        m = CheckpointManager(tmp_path)
        m.save(7, _fresh_state(case))
        (tmp_path / "latest").unlink()
        assert m.latest_step() == 7

    def test_rng_state_roundtrip(self, tmp_path, case):
        m = CheckpointManager(tmp_path)
        rng = np.random.default_rng(123)
        rng.random(10)
        m.save(1, _fresh_state(case), rng=rng)
        ckpt = m.load([case.grid])
        restored = np.random.default_rng(0)
        restored.bit_generator.state = ckpt.rng_state
        assert restored.random() == rng.random()

    def test_load_rejects_wrong_rank_count(self, tmp_path, case):
        m = CheckpointManager(tmp_path)
        m.save(1, _fresh_state(case))
        with pytest.raises(ValueError, match="ranks"):
            m.load([case.grid, case.grid])

    def test_load_missing_raises(self, tmp_path, case):
        with pytest.raises(FileNotFoundError):
            CheckpointManager(tmp_path / "empty").load([case.grid])


# ------------------------------------------------- bit-identical continue
class TestResumeBitIdentity:
    def test_single_domain_resume_equals_uninterrupted(self, tmp_path, case):
        """AsucaModel: run 6 steps straight vs. run 6 with a checkpoint at
        3, reload, and continue — the final fields must be identical."""
        model = case.model
        ref = model.run(_fresh_state(case), 6)

        m = CheckpointManager(tmp_path, every=3)
        model.run(_fresh_state(case), 3, checkpoint=m)
        ckpt = m.load([case.grid])
        assert ckpt.step == 3
        resumed = model.run(ckpt.states[0], 3, checkpoint=m,
                            start_step=ckpt.step)
        for name in ref.prognostic_names():
            np.testing.assert_array_equal(resumed.get(name), ref.get(name),
                                          err_msg=name)
        assert resumed.time == ref.time

    def test_multigpu_resume_equals_uninterrupted(self, tmp_path):
        """2x2 MultiGpuAsuca: kill after step 2 of 4, restore from the
        step-2 checkpoint, finish — bit-identical to the straight run."""
        from repro.dist.multigpu import MultiGpuAsuca

        case = make_warm_bubble_case(nx=12, ny=12, nz=10)

        def fresh():
            machine = MultiGpuAsuca(case.grid, case.ref, 2, 2,
                                    case.model.config)
            states = machine.scatter_state(case.model.initial_state())
            machine.exchange_all(states, None)
            return machine, states

        machine, states = fresh()
        ref = machine.gather_state(machine.run(states, 4))

        m = CheckpointManager(tmp_path, every=2)
        machine, states = fresh()
        machine.run(states, 2, checkpoint=m)       # "killed" here
        ckpt = m.load([r.grid for r in machine.ranks])
        assert ckpt.step == 2

        machine2, _ = fresh()                      # a fresh process
        machine2.step_index = ckpt.step
        out = machine2.gather_state(machine2.run(ckpt.states, 2,
                                                 checkpoint=m))
        for name in ref.prognostic_names():
            np.testing.assert_array_equal(out.get(name), ref.get(name),
                                          err_msg=name)
