"""The RunSpec/Experiment facade, crash recovery, and the CLI surface."""
import warnings

import numpy as np
import pytest

from repro.api import Experiment, RunSpec, make_case, parse_ranks
from repro.resilience.faults import FaultPlan

_SMALL = dict(nx=12, ny=12, nz=10)


# ----------------------------------------------------------------- RunSpec
class TestRunSpec:
    def test_normalization_auto_backend(self):
        assert RunSpec(**_SMALL).normalized().backend == "cpu"
        assert RunSpec(summary=True, **_SMALL).normalized().backend == "gpu"
        s = RunSpec(ranks="2x2", **_SMALL).normalized()
        assert s.backend == "multigpu" and s.ranks == (2, 2)

    def test_normalization_validates(self):
        with pytest.raises(ValueError, match="multigpu"):
            RunSpec(backend="multigpu").normalized()
        with pytest.raises(ValueError, match="backend"):
            RunSpec(backend="tpu").normalized()
        with pytest.raises(ValueError, match="checkpoint_dir"):
            RunSpec(checkpoint_every=5).normalized()
        with pytest.raises(ValueError, match="steps"):
            RunSpec(steps=-1).normalized()

    def test_faults_parsed_to_plan(self):
        s = RunSpec(faults="drop@1", **_SMALL).normalized()
        assert isinstance(s.faults, FaultPlan)
        assert len(s.faults) == 1

    def test_parse_ranks(self):
        assert parse_ranks(None) is None
        assert parse_ranks("2x3") == (2, 3)
        assert parse_ranks((4, 1)) == (4, 1)

    def test_make_case_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_case("tornado")


# -------------------------------------------------------------- Experiment
class TestExperiment:
    def test_cpu_backend_matches_direct_model(self):
        result = Experiment(RunSpec(steps=3, **_SMALL)).run()
        case = make_case("warm-bubble", **_SMALL)
        ref = case.model.run(case.state, 3)
        for name in ref.prognostic_names():
            np.testing.assert_array_equal(result.state.get(name),
                                          ref.get(name), err_msg=name)
        assert result.steps_done == 3
        assert result.recoveries == 0

    def test_multigpu_backend_matches_cpu(self):
        cpu = Experiment(RunSpec(steps=2, **_SMALL)).run()
        mg = Experiment(RunSpec(steps=2, ranks=(2, 2), **_SMALL)).run()
        g = mg.state.grid
        np.testing.assert_allclose(g.interior(mg.state.rho),
                                   g.interior(cpu.state.rho),
                                   rtol=0, atol=1e-12)
        assert mg.halo_messages > 0

    def test_advance_and_gather_segmented(self):
        exp = Experiment(RunSpec(steps=0, **_SMALL)).prepare()
        exp.advance(2)
        mid = exp.gather().copy()
        exp.advance(1)
        assert exp.steps_done == 3
        assert exp.gather().time > mid.time

    def test_crash_recovery_bit_identity_2x2(self, tmp_path):
        """The acceptance scenario: 2x2 run, rank crash at step 3,
        checkpoints every 2 — resumes and matches the uninterrupted run
        bit for bit, with the recovery visible in the metrics."""
        base = dict(steps=5, ranks=(2, 2), checkpoint_every=2, **_SMALL)
        ref = Experiment(RunSpec(
            checkpoint_dir=str(tmp_path / "ref"), **base)).run()
        faulty = Experiment(RunSpec(
            faults="crash@3:r1", metrics=True,
            checkpoint_dir=str(tmp_path / "faulty"), **base)).run()

        for name in ref.state.prognostic_names():
            np.testing.assert_array_equal(faulty.state.get(name),
                                          ref.state.get(name), err_msg=name)
        assert faulty.recoveries == 1
        assert faulty.fault_log[0][1].value == "crash"
        counters = faulty.metrics["counters"]
        assert counters["resilience.recoveries"] == 1
        assert counters["resilience.faults.crash"] == 1
        assert counters["checkpoint.restores"] == 1
        assert faulty.checkpoints_written >= 2

    def test_crash_without_checkpoint_restarts_from_initial(self):
        ref = Experiment(RunSpec(steps=4, **_SMALL)).run()
        faulty = Experiment(RunSpec(steps=4, faults="crash@2",
                                    **_SMALL)).run()
        for name in ref.state.prognostic_names():
            np.testing.assert_array_equal(faulty.state.get(name),
                                          ref.state.get(name), err_msg=name)
        assert faulty.recoveries == 1

    def test_resume_continues_bit_identically(self, tmp_path):
        base = dict(ranks=(2, 2), checkpoint_every=2,
                    checkpoint_dir=str(tmp_path), **_SMALL)
        ref = Experiment(RunSpec(steps=4, **dict(
            base, checkpoint_dir=str(tmp_path / "ref")))).run()
        Experiment(RunSpec(steps=2, **base)).run()      # interrupted here
        resumed = Experiment(RunSpec(steps=4, resume=True, **base)).run()
        assert resumed.resumed_from == 2
        assert resumed.steps_done == 4
        for name in ref.state.prognostic_names():
            np.testing.assert_array_equal(resumed.state.get(name),
                                          ref.state.get(name), err_msg=name)

    def test_resume_without_checkpoint_raises(self, tmp_path):
        spec = RunSpec(steps=2, resume=True,
                       checkpoint_dir=str(tmp_path / "void"), **_SMALL)
        with pytest.raises(FileNotFoundError):
            Experiment(spec).prepare()

    def test_retry_stats_surface_in_result(self):
        result = Experiment(RunSpec(steps=2, ranks=(2, 2),
                                    faults="drop@0,corrupt@1",
                                    **_SMALL)).run()
        assert result.retry_stats.retransmits == 2
        assert result.retry_stats.recovery_s > 0
        assert "retransmits" in result.resilience_report()

    def test_gpu_backend_session_records_devices(self):
        result = Experiment(RunSpec(steps=1, backend="gpu", metrics=True,
                                    **_SMALL)).run()
        assert result.session is not None
        assert result.session.device_ops
        assert result.metrics["counters"]["kernel.launches"] > 0


# ------------------------------------------------------------- deprecation
class TestDeprecatedShimsRemoved:
    def test_cli_make_case_shim_is_gone(self):
        """The old CLI case-construction shim was removed; the single
        implementation is repro.api.make_case."""
        import repro.cli as cli

        assert not hasattr(cli, "_make_case")
        from repro.api import make_case

        case = make_case("warm-bubble", nx=12, ny=12, nz=10)
        assert case.grid.nx == 12

    def test_halo_exchanger_rejects_legacy_kwargs(self):
        from repro.core.grid import make_grid
        from repro.dist.decomposition import Topology, decompose
        from repro.dist.halo import HaloExchanger
        from repro.dist.mpi_sim import SimComm

        g = make_grid(nx=8, ny=8, nz=4, dx=500.0, dy=500.0, ztop=4000.0)
        subs = decompose(8, 8, 2, 2, min_cells=g.halo)
        with pytest.raises(TypeError):
            HaloExchanger(SimComm(4), subs, periodic_x=True,
                          periodic_y=False)
        ex = HaloExchanger(SimComm(4), subs, Topology.from_grid(g, 2, 2))
        assert ex.topology.periodic_x and ex.topology.periodic_y

    def test_topology_construction_does_not_warn(self):
        from repro.core.grid import make_grid
        from repro.dist.decomposition import Topology, decompose
        from repro.dist.halo import HaloExchanger
        from repro.dist.mpi_sim import SimComm

        g = make_grid(nx=8, ny=8, nz=4, dx=500.0, dy=500.0, ztop=4000.0)
        subs = decompose(8, 8, 2, 2, min_cells=g.halo)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            HaloExchanger(SimComm(4), subs, Topology.from_grid(g, 2, 2))


# -------------------------------------------------------------------- CLI
class TestCliSurface:
    def test_run_with_demo_faults_smoke(self, capsys, tmp_path,
                                        monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["run", "--faults", "demo", "--steps", "5",
                     "--nx", "12", "--ny", "12", "--nz", "10"]) == 0
        out = capsys.readouterr().out
        assert "resilience:" in out
        assert "crash recoveries" in out
        assert "max|w|" in out

    def test_run_checkpoint_resume_cycle(self, capsys, tmp_path,
                                         monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        common = ["run", "warm-bubble", "--nx", "12", "--ny", "12",
                  "--nz", "10", "--ranks", "2x2",
                  "--checkpoint-every", "2", "--checkpoint-dir", "ck"]
        assert main(common + ["--steps", "2"]) == 0
        line_a = capsys.readouterr().out.strip().splitlines()[-1]
        assert main(common + ["--steps", "4", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint at step 2" in out
        uninterrupted = [a if a != "ck" else "ck2" for a in common]
        assert main(uninterrupted + ["--steps", "4"]) == 0
        line_b = capsys.readouterr().out.strip().splitlines()[-1]
        assert out.strip().splitlines()[-1] == line_b != line_a
