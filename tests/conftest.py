"""Shared fixtures and helpers for the test suite."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import make_grid, bell_mountain
from repro.core.reference import make_reference_state
from repro.core.state import state_from_reference
from repro.workloads.sounding import constant_stability_sounding


@pytest.fixture
def small_grid():
    """Flat periodic grid, big enough for every stencil."""
    return make_grid(nx=12, ny=10, nz=8, dx=1000.0, dy=1000.0, ztop=8000.0)


@pytest.fixture
def terrain_grid():
    """Periodic grid with a gentle bell mountain."""
    terr = bell_mountain(height=400.0, half_width=3000.0, x0=6000.0)
    return make_grid(nx=12, ny=10, nz=8, dx=1000.0, dy=1000.0, ztop=8000.0,
                     terrain=terr)


@pytest.fixture
def small_state(small_grid):
    ref = make_reference_state(small_grid, constant_stability_sounding())
    return state_from_reference(small_grid, ref, u0=10.0)


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
