"""Shared fixtures and helpers for the test suite."""
from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import make_grid, bell_mountain
from repro.core.reference import make_reference_state
from repro.core.state import state_from_reference
from repro.workloads.sounding import constant_stability_sounding


@pytest.fixture
def small_grid():
    """Flat periodic grid, big enough for every stencil."""
    return make_grid(nx=12, ny=10, nz=8, dx=1000.0, dy=1000.0, ztop=8000.0)


@pytest.fixture
def terrain_grid():
    """Periodic grid with a gentle bell mountain."""
    terr = bell_mountain(height=400.0, half_width=3000.0, x0=6000.0)
    return make_grid(nx=12, ny=10, nz=8, dx=1000.0, dy=1000.0, ztop=8000.0,
                     terrain=terr)


@pytest.fixture
def small_state(small_grid):
    ref = make_reference_state(small_grid, constant_stability_sounding())
    return state_from_reference(small_grid, ref, u0=10.0)


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def stream_pair_timeline(ordered: bool):
    """Two streams touching one buffer — the canonical racecheck fixture.

    A d2h on stream 1 writes ``buf``; an mpi op on stream 2 reads it.
    With ``ordered=True`` the consumer waits on a recorded event (the
    correct CUDA idiom); with ``ordered=False`` the edge is missing, and
    only engine serialization hides the hazard.  Returns the device.
    """
    from repro.gpu.device import Access, GPUDevice
    from repro.gpu.spec import TESLA_S1070

    dev = GPUDevice(TESLA_S1070)
    s1, s2 = dev.create_stream(), dev.create_stream()
    dev.schedule("produce", "d2h", s1, 1.0, accesses=(Access("buf", "w"),))
    if ordered:
        s2.wait_event(s1.record_event())
    dev.schedule("consume", "mpi", s2, 1.0, accesses=(Access("buf", "r"),))
    return dev


@pytest.fixture
def race_timeline():
    """The :func:`stream_pair_timeline` builder, as a fixture."""
    return stream_pair_timeline
