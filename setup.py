"""Legacy setup shim.

The execution environment has no network access and no `wheel` package, so
PEP 517/660 builds (`pip install -e .`) cannot produce editable wheels.
This shim lets `python setup.py develop` (and pip's legacy fallback) work
offline.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
