#!/usr/bin/env python
"""Domain-decomposed forecast on the simulated multi-GPU cluster: a moist
cyclonic vortex steered across coastal terrain with hourly-refreshed
relaxation boundaries — the scaled-down analogue of the paper's Fig. 12
real-data run (1900x2272x48 on 54 GPUs).

Demonstrates:
* the 2-D decomposition and lockstep halo exchange (repro.dist),
* equality of the decomposed and single-domain runs,
* the Fig.-11-style modeled timing for the same decomposition.

Run:  python examples/multi_gpu_forecast.py
"""
import numpy as np

from repro.core.model import ModelConfig
from repro.core.rk3 import DynamicsConfig
from repro.dist import MultiGpuAsuca, OverlapModel
from repro.workloads.real_case import make_real_case


def main() -> None:
    # the forecast case (laptop-sized stand-in for the 500 m typhoon run)
    case = make_real_case(nx=36, ny=30, nz=12, dx=2500.0, dt=6.0)
    g = case.grid

    # ---- functional decomposition: 2 x 3 "GPUs" -----------------------
    machine = MultiGpuAsuca(g, case.ref, px=2, py=3, config=case.model.config,
                            relaxation=case.model.relaxation)
    rank_states = machine.scatter_state(case.state)
    machine.exchange_all(rank_states, None)

    print(f"domain {g.nx}x{g.ny}x{g.nz} split over "
          f"{machine.px}x{machine.py} = {len(machine.ranks)} ranks")
    for r in machine.ranks[:3]:
        print(f"  rank {r.sub.rank}: offset ({r.sub.x0},{r.sub.y0}), "
              f"local {r.sub.nx}x{r.sub.ny}")

    n_steps = 60  # six minutes of model time
    single = case.state
    for _ in range(n_steps):
        single = case.model.step(single)
    machine.comm.stats.reset()
    rank_states = machine.run(rank_states, n_steps)
    gathered = machine.gather_state(rank_states)

    h = g.halo
    diff = np.abs(
        gathered.rho[h : h + g.nx, h : h + g.ny]
        - single.rho[h : h + g.nx, h : h + g.ny]
    ).max()
    print(f"\nafter {n_steps} steps: max |rho_multi - rho_single| = {diff:.2e}"
          f"  (bit-identical: {diff == 0.0})")
    stats = machine.comm.stats
    print(f"halo traffic: {stats.messages} messages, "
          f"{stats.bytes_total / 1e6:.1f} MB total")

    from repro.core.boundary import fill_halos_state
    fill_halos_state(gathered)  # gather fills interiors only
    u, v, w = gathered.velocities()
    print(f"vortex max wind: {np.hypot(u[g.isl_u].max(), v[g.isl_v].max()):.1f} m/s")

    # ---- the performance model for the same structure ------------------
    print("\nmodeled step timing at the paper's 528-GPU scale (Fig. 11):")
    model = OverlapModel()
    for overlap in (False, True):
        tl = model.step_timeline(overlap)
        label = "overlapping" if overlap else "non-overlapping"
        print(f"  {label:16s} total {tl.total * 1e3:6.1f} ms  "
              f"(compute {tl.compute * 1e3:5.0f}, MPI {tl.mpi * 1e3:4.0f}, "
              f"GPU-CPU {tl.gpu_cpu * 1e3:4.0f})")


if __name__ == "__main__":
    main()
