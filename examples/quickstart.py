#!/usr/bin/env python
"""Quickstart: build a small non-hydrostatic atmosphere, kick it with a
warm bubble, and integrate ten minutes of model time.

This touches the core public API end to end:

    make_grid -> make_reference_state -> AsucaModel -> step/run/diagnostics

Run:  python examples/quickstart.py
"""
import numpy as np

from repro.core import (
    AsucaModel,
    DynamicsConfig,
    ModelConfig,
    make_grid,
    make_reference_state,
)
from repro.workloads import tropospheric_sounding


def main() -> None:
    # 24 km x 24 km x 10 km domain at 1 km / 500 m resolution
    grid = make_grid(nx=24, ny=24, nz=20, dx=1000.0, dy=1000.0, ztop=10000.0)

    # hydrostatically balanced troposphere
    ref = make_reference_state(grid, tropospheric_sounding())

    # HE-VI split-explicit dynamics: 3 s long step, 6 acoustic substeps
    config = ModelConfig(dynamics=DynamicsConfig(dt=3.0, ns=6))
    model = AsucaModel(grid, ref, config)

    state = model.initial_state()

    # +2 K spherical warm bubble at 1.5 km height
    X, Y = np.meshgrid(grid.x_c(), grid.y_c(), indexing="ij")
    z3 = grid.z3d_c()
    r = np.sqrt(
        ((X[:, :, None] - 12000.0) / 2500.0) ** 2
        + ((Y[:, :, None] - 12000.0) / 2500.0) ** 2
        + ((z3 - 1500.0) / 1200.0) ** 2
    )
    state.rhotheta += state.rho * 2.0 * np.maximum(0.0, 1.0 - r)
    model._exchange(state, None)

    print(f"{'time':>6} {'max w':>8} {'max wind':>9} {'theta range':>22} {'mass drift':>12}")
    d0 = model.diagnostics(state)
    for _ in range(10):
        state = model.run(state, 20)
        d = model.diagnostics(state)
        drift = (d.total_mass - d0.total_mass) / d0.total_mass
        print(
            f"{d.time:5.0f}s {d.max_w:7.2f}m/s {d.max_wind:8.2f}m/s "
            f"{d.min_theta:9.2f}..{d.max_theta:7.2f} K {drift: .2e}"
        )

    print("\nThe bubble rises, drags air up, and the flux-form dynamics")
    print("conserve total mass to round-off. Next: examples/mountain_wave.py")


if __name__ == "__main__":
    main()
