#!/usr/bin/env python
"""Cold convection with the ice-phase extension — the paper's future work
("supporting a wider variety of physics processes such as snow"),
implemented: a vigorous moist updraft glaciates aloft, snow grows by
deposition and riming, melts through the 0 C level, and reaches the
ground as rain.

Run:  python examples/winter_convection.py
"""
import numpy as np

from repro import constants as c
from repro.core import AsucaModel, DynamicsConfig, ModelConfig, make_grid, make_reference_state
from repro.core.pressure import eos_pressure, exner
from repro.physics.saturation import saturation_mixing_ratio
from repro.workloads import tropospheric_sounding


def main() -> None:
    grid = make_grid(nx=16, ny=16, nz=20, dx=1000.0, dy=1000.0, ztop=15000.0)
    ref = make_reference_state(grid, tropospheric_sounding())
    config = ModelConfig(
        dynamics=DynamicsConfig(dt=4.0, ns=6, rayleigh_depth=3500.0),
        physics_enabled=True,
        ice_enabled=True,
    )
    model = AsucaModel(grid, ref, config)
    state = model.initial_state()

    # find the freezing level of the base state
    sx, sy = grid.isl
    T_ref = ref.theta_c * ref.pi_c
    k_freeze = int(np.argmin(np.abs(T_ref[grid.halo, grid.halo] - c.T0)))
    print(f"freezing level ~ {grid.z_c[k_freeze]/1000:.1f} km "
          f"(model top {grid.ztop/1000:.0f} km)")

    # strong moist bubble
    z3 = grid.z3d_c()
    X = grid.x_c()[:, None, None]
    Y = grid.y_c()[None, :, None]
    bubble = np.maximum(0.0, 1.0 - np.sqrt(
        ((X - 8000.0) / 3000.0) ** 2 + ((Y - 8000.0) / 3000.0) ** 2
        + ((z3 - 2000.0) / 1500.0) ** 2))
    state.rhotheta += state.rho * 6.0 * bubble
    p = eos_pressure(state.rhotheta, grid)
    T = (state.rhotheta / state.rho) * exner(p)
    state.q["qv"][...] = np.minimum(1.0, 0.7 + 0.4 * bubble) \
        * saturation_mixing_ratio(p, T) * state.rho
    model._exchange(state, None)

    print(f"{'t[min]':>6} {'max w':>7} {'qc':>7} {'qr':>7} {'qi':>7} "
          f"{'qs':>7} {'precip':>8}")
    for minute in range(0, 13, 2):
        target = int(minute * 60 / 4.0)
        done = int(round(state.time / 4.0))
        if target > done:
            state = model.run(state, target - done)
        d = model.diagnostics(state)
        q = {n: float((state.q[n] / state.rho).max()) * 1e3
             for n in ("qc", "qr", "qi", "qs")}
        acc = state.precip_accum
        precip = float(acc.max()) if acc is not None else 0.0
        print(f"{minute:6d} {d.max_w:6.2f}m {q['qc']:6.3f} {q['qr']:6.3f} "
              f"{q['qi']:6.3f} {q['qs']:6.3f} {precip:7.4f}mm")

    # where does each species live? (column maxima by level)
    print("\nhydrometeor profiles (domain max per level, g/kg):")
    print(f"{'z[km]':>6} {'T[C]':>6} {'qc':>7} {'qr':>7} {'qi':>7} {'qs':>7}")
    for k in range(grid.nz - 1, -1, -2):
        vals = [float((state.q[n][sx, sy, k] / state.rho[sx, sy, k]).max()) * 1e3
                for n in ("qc", "qr", "qi", "qs")]
        t_lvl = float(T_ref[grid.halo, grid.halo, k]) - c.T0
        print(f"{grid.z_c[k]/1000:6.1f} {t_lvl:6.1f} "
              + " ".join(f"{v:7.3f}" for v in vals))
    print("\nice and snow live above the freezing level; rain below — the")
    print("Bergeron/melting structure the cold-rain extension adds to ASUCA.")


if __name__ == "__main__":
    main()
