#!/usr/bin/env python
"""The paper's benchmark workload (Sec. IV-B): flow over an ideal bell
mountain with periodic boundaries — vertically propagating gravity waves
develop and are absorbed by the upper sponge layer.

Prints a vertical cross-section of w along the flow and compares the wave
amplitude against the linear-theory scale U h / a.

Run:  python examples/mountain_wave.py
"""
import numpy as np

from repro.viz import render_field
from repro.workloads.mountain_wave import linear_wave_w_scale, make_mountain_wave_case


def main() -> None:
    case = make_mountain_wave_case(
        nx=64, ny=8, nz=24, dx=2000.0, ztop=18000.0,
        mountain_height=400.0, u0=10.0, dt=5.0, ns=6,
    )
    print(f"mountain: h = {case.mountain_height} m, a = {case.half_width} m, "
          f"U = {case.u0} m/s")
    print(f"linear w scale U h / a = "
          f"{linear_wave_w_scale(case.u0, case.mountain_height, case.half_width):.2f} m/s")

    minutes = [10, 30, 60]
    steps_done = 0
    for m in minutes:
        steps = int(m * 60 / case.model.config.dynamics.dt) - steps_done
        case.run(steps)
        steps_done += steps
        d = case.model.diagnostics(case.state)
        print(f"t = {m:3d} min: max |w| = {d.max_w:.3f} m/s, "
              f"max wind = {d.max_wind:.2f} m/s")

    # cross-section through the mountain (mid y)
    g = case.grid
    _, _, w = case.state.velocities()
    j = g.halo + g.ny // 2
    w_xz = w[g.halo : g.halo + g.nx, j, 1:-1]
    print("\n|w| cross-section (x ->, z up; UPPERCASE = updraft):")
    print(render_field(w_xz))
    print("\nThe tilted updraft/downdraft pattern above the mountain is the")
    print("vertically propagating hydrostatic gravity wave of the st-MIP test.")


if __name__ == "__main__":
    main()
