#!/usr/bin/env python
"""Kernel-level performance analysis on the virtual Tesla S1070: places
the five key ASUCA kernels on the paper's Eq.-6 roofline (Fig. 5),
reports the single-GPU calibration (Fig. 4 anchors), and shows why the
x-z-y array ordering beats the Fortran kij ordering (Sec. IV-A-1) —
including a *real* NumPy stride measurement of the same effect.

Run:  python examples/gpu_roofline_analysis.py
"""
import numpy as np

from repro.gpu import ArrayOrder, Precision, TESLA_S1070, attainable_flops
from repro.gpu.coalescing import bandwidth_fraction, stride_microbenchmark
from repro.perf import ROOFLINE_KERNELS, asuca_step_cost, cpu_step_time
from repro.perf.costmodel import ASUCA_KERNELS


def main() -> None:
    n = 320 * 256 * 48
    spec = TESLA_S1070

    print("=== Fig. 5: arithmetic intensity vs performance (SP) ===")
    print(f"{'kernel':<34} {'AI [flop/B]':>11} {'GFlops':>8} {'bound':>8}")
    ridge = spec.peak_flops_sp / spec.mem_bandwidth
    for label, name in ROOFLINE_KERNELS:
        k = ASUCA_KERNELS[name]
        ai = k.cost.intensity(Precision.SINGLE)
        t = k.duration(n, spec, Precision.SINGLE)
        gf = k.cost.flops(n) / t / 1e9
        bound = "compute" if ai > ridge else "memory"
        print(f"{label:<34} {ai:11.2f} {gf:8.1f} {bound:>8}")
    print(f"(ridge at {ridge:.2f} flop/B; peak {spec.peak_flops_sp/1e9:.1f} GFlops, "
          f"{spec.mem_bandwidth/1e9:.1f} GB/s)")

    print("\nroofline curve (Eq. 6, alpha = 0):")
    for ai in (0.05, 0.2, 1.0, 5.0, 25.0, 100.0):
        print(f"  AI {ai:6.2f} -> attainable "
              f"{attainable_flops(ai, spec)/1e9:7.1f} GFlops")

    print("\n=== Fig. 4 anchors: single GPU vs one Opteron core ===")
    c_sp = asuca_step_cost(320, 256, 48)
    c_dp = asuca_step_cost(320, 128, 48, precision=Precision.DOUBLE)
    t_cpu = cpu_step_time(320, 256, 48)
    print(f"GPU single precision : {c_sp.gflops:5.1f} GFlops  (paper 44.3)")
    print(f"GPU double precision : {c_dp.gflops:5.1f} GFlops  (paper 14.6)")
    print(f"speedup SP vs CPU DP : {t_cpu / c_sp.total_time:5.1f}x      (paper 83.4)")

    print("\n=== Sec. IV-A-1: array ordering ===")
    for order in (ArrayOrder.XZY, ArrayOrder.KIJ):
        frac = bandwidth_fraction(order)
        c = asuca_step_cost(320, 256, 48, order=order)
        print(f"{order.value}: coalesced bandwidth fraction {frac:5.2f} "
              f"-> {c.gflops:5.1f} GFlops")

    print("\nreal host-memory stride effect (same direction, smaller ratio):")
    res = stride_microbenchmark()
    print(f"  contiguous: {res['contiguous_seconds']*1e3:7.2f} ms"
          f"   strided: {res['strided_seconds']*1e3:7.2f} ms"
          f"   ratio {res['strided_seconds']/res['contiguous_seconds']:.2f}x")


if __name__ == "__main__":
    main()
