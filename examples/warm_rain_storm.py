#!/usr/bin/env python
"""Deep moist convection with the Kessler warm-rain scheme: a nearly
saturated warm bubble grows into a precipitating storm — the physics path
the paper ports to the GPU ("warm rain" kernel (5) of Fig. 5).

Run:  python examples/warm_rain_storm.py
"""
import numpy as np

from repro.workloads.warm_bubble import make_warm_bubble_case


def main() -> None:
    case = make_warm_bubble_case(nx=20, ny=20, nz=18, dx=1000.0, dt=4.0,
                                 bubble_dtheta=4.0)
    g = case.grid
    dt = case.model.config.dynamics.dt

    print(f"{'t [min]':>7} {'max w':>7} {'max qc':>9} {'max qr':>9} "
          f"{'cloud water':>12} {'max precip':>11}")
    for minute in range(0, 21, 2):
        target_steps = int(minute * 60 / dt)
        done = int(round(case.state.time / dt))
        if target_steps > done:
            case.run(target_steps - done)
        st = case.state
        qc = float((st.q['qc'] / st.rho).max()) * 1e3
        qr = float((st.q['qr'] / st.rho).max()) * 1e3
        d = case.model.diagnostics(st)
        print(f"{minute:7d} {d.max_w:6.2f}m {qc:7.3f}g/kg {qr:7.3f}g/kg "
              f"{case.cloud_water_path():11.3e}kg {case.max_precip_mm():9.4f}mm")

    acc = case.state.precip_accum
    if acc is not None and acc.max() > 0:
        from repro.viz import render_map

        print("\naccumulated surface precipitation (mm, x -> across, y down):")
        print(render_map(acc))
    print("\ncondensation -> autoconversion -> accretion -> sedimentation:")
    print("the full Kessler chain of the paper's physics processes.")


if __name__ == "__main__":
    main()
