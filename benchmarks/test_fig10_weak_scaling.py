"""Fig. 10 — Performance of ASUCA on multiple GPUs of TSUBAME:
overlapping vs non-overlapping multi-GPU computation in single precision,
plus the CPU (double precision) line, over the 14 Table-I configurations.

Paper anchors: 15.0 TFlops at 528 GPUs with the overlapping method; the
overlap advantage is ~14%; weak-scaling efficiency >= 93% (6324x6052x48 on
480+ GPUs relative to 6); the CPU line is negligible at this scale.
"""
import pytest

from bench_json import write_bench_json
from repro.perf.report import ComparisonReport, format_table
from repro.perf.scaling import weak_scaling_efficiency, weak_scaling_sweep


def test_fig10_weak_scaling(benchmark, emit):
    points = benchmark.pedantic(weak_scaling_sweep, rounds=1, iterations=1)

    table = format_table(
        ["GPUs", "PxxPy", "mesh", "overlap [TFlops]", "non-overlap",
         "CPU DP", "gain %"],
        [
            [p.n_gpus, f"{p.px}x{p.py}",
             f"{p.mesh[0]}x{p.mesh[1]}x{p.mesh[2]}",
             p.tflops_overlap, p.tflops_nonoverlap, p.tflops_cpu,
             100.0 * p.overlap_gain]
            for p in points
        ],
        title="Fig. 10 — weak scaling on TSUBAME 1.2 (Table I meshes)",
    )

    last = points[-1]
    eff = weak_scaling_efficiency(points)
    rep = ComparisonReport("Fig. 10 anchors")
    rep.add("TFlops @528 GPUs (overlap, SP)", 15.0, last.tflops_overlap,
            rel_tol=0.07)
    rep.add("overlap improvement @528 [%]", 14.0, 100 * last.overlap_gain,
            rel_tol=0.35)
    rep.add("weak-scaling efficiency [%]", 93.0, 100 * eff, rel_tol=0.05)
    emit(table + "\n\n" + rep.render())
    write_bench_json("fig10_weak_scaling", {
        "tflops_overlap_528": last.tflops_overlap,
        "overlap_gain_528": last.overlap_gain,
        "weak_scaling_efficiency": eff,
        "points": [
            {"n_gpus": p.n_gpus, "px": p.px, "py": p.py,
             "mesh": list(p.mesh), "tflops_overlap": p.tflops_overlap,
             "tflops_nonoverlap": p.tflops_nonoverlap,
             "tflops_cpu": p.tflops_cpu}
            for p in points
        ],
    })

    assert last.tflops_overlap == pytest.approx(15.0, rel=0.07)
    assert eff >= 0.90
    # strictly increasing TFlops, overlap always at least as good
    tf = [p.tflops_overlap for p in points]
    assert all(b > a for a, b in zip(tf, tf[1:]))
    assert all(p.tflops_overlap >= p.tflops_nonoverlap for p in points)
    # GPU line dwarfs the CPU line everywhere (the figure's visual point)
    assert all(p.tflops_overlap > 20 * p.tflops_cpu for p in points)
