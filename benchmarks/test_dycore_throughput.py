"""Throughput of the *actual* NumPy dycore and its hot kernels on this
machine — the reproduction's own performance, as opposed to the modeled
Tesla numbers.  Useful for tracking regressions in the vectorized
implementation (the optimization workflow of the repository's coding
guides: measure first).
"""
import numpy as np
import pytest

from repro.core import advection as adv
from repro.core.boundary import fill_halos_state
from repro.core.grid import make_grid
from repro.core.helmholtz import HelmholtzOperator
from repro.core.pressure import eos_pressure, linearization_coefficient
from repro.core.reference import make_reference_state
from repro.core.tridiag import thomas_solve
from repro.workloads.mountain_wave import make_mountain_wave_case
from repro.workloads.sounding import constant_stability_sounding


@pytest.fixture(scope="module")
def setup():
    g = make_grid(nx=48, ny=32, nz=24, dx=1000.0, dy=1000.0, ztop=12000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    rng = np.random.default_rng(0)
    phi = 300.0 + rng.normal(size=g.shape_c)
    fx = rng.normal(size=g.shape_u)
    fy = rng.normal(size=g.shape_v)
    fz = rng.normal(size=g.shape_w)
    fz[..., 0] = fz[..., -1] = 0.0
    return g, ref, phi, fx, fy, fz


def test_scalar_advection_kernel(benchmark, setup):
    g, ref, phi, fx, fy, fz = setup
    out = benchmark(adv.advect_scalar, phi, fx, fy, fz, g)
    assert np.all(np.isfinite(g.interior(out)))


def test_momentum_advection_kernel(benchmark, setup):
    g, ref, phi, fx, fy, fz = setup
    u = np.ones(g.shape_u)
    out = benchmark(adv.advect_u, u, fx, fy, fz, g)
    assert np.all(np.isfinite(out[g.isl_u]))


def test_helmholtz_solve(benchmark, setup):
    g, ref, *_ = setup
    rhotheta_hat = ref.rhotheta_c * g.jac[:, :, None]
    p = eos_pressure(rhotheta_hat, g)
    cp_lin = linearization_coefficient(p, rhotheta_hat)
    op = HelmholtzOperator(g, ref.theta_wf, cp_lin, dtau=0.5, beta=0.55)
    rhs = np.random.default_rng(1).normal(size=(g.nxh, g.nyh, g.nz - 1))
    w = benchmark(op.solve, rhs)
    assert op.residual(w, rhs) < 1e-8


def test_batched_thomas(benchmark):
    rng = np.random.default_rng(2)
    shape = (64, 64)
    n = 48
    sub = rng.uniform(-1, 1, size=shape + (n,))
    sup = rng.uniform(-1, 1, size=shape + (n,))
    diag = 3.0 + np.abs(sub) + np.abs(sup)
    rhs = rng.normal(size=shape + (n,))
    x = benchmark(thomas_solve, sub, diag, sup, rhs)
    assert np.all(np.isfinite(x))


def test_full_model_step(benchmark):
    """One complete RK3/HE-VI long step, the end-to-end unit of work."""
    case = make_mountain_wave_case(nx=32, ny=16, nz=16, dx=2000.0,
                                   ztop=16000.0)
    state = case.state

    def step():
        return case.model.step(state)

    new = benchmark.pedantic(step, rounds=3, iterations=1)
    assert np.all(np.isfinite(new.grid.interior(new.rho)))


def test_halo_fill(benchmark, setup):
    g, ref, *_ = setup
    from repro.core.state import state_from_reference

    st = state_from_reference(g, ref, u0=10.0)
    benchmark(fill_halos_state, st)
