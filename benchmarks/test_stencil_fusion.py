"""Stencil fusion — the fused executor vs the reference NumPy kernels.

The fused backend changes only memory management (pooled temporaries,
``out=`` ufuncs, precompiled slice plans; docs/STENCILS.md), so it must
be bit-identical to the reference while shedding allocator traffic.
Anchors:

* per-kernel wall-clock speedup on the hot dycore kernels at a
  production-like tile (64x64x32): the aggregate must beat 1.1x (the
  measured wins are ~1.4x advection, ~3x hyperdiffusion);
* bit-identity of every timed kernel output (``np.array_equal``);
* deterministic dispatch/pool statistics of a fixed end-to-end run —
  the numbers ``repro doctor --regress`` gates in CI, since wall-clock
  is too noisy to gate there (wall metrics ship with the artifact but
  the CI gate ignores them by pattern).

The numbers land in ``benchmarks/reports/BENCH_stencil_fusion.json``.
"""
import time

import numpy as np

from bench_json import write_bench_json
from repro.api import Experiment, RunSpec
from repro.core.advection import advect_scalar, advect_u
from repro.core.diffusion import hyperdiffusion_c, vertical_diffusion_c
from repro.core.grid import make_grid
from repro.core.helmholtz import HelmholtzOperator
from repro.core.pressure import eos_pressure
from repro.perf.report import format_table
from repro.stencil import StencilExecutor, use_executor

NX, NY, NZ = 64, 64, 32
ROUNDS = 5          #: timed repetitions per kernel; best-of wins
MIN_SPEEDUP = 1.1   #: aggregate fused-vs-reference gate


def _inputs():
    g = make_grid(nx=NX, ny=NY, nz=NZ, dx=100.0, dy=100.0, ztop=3200.0)
    r = np.random.default_rng(0)
    phi = r.normal(size=(g.nxh, g.nyh, g.nz))
    fx = r.normal(size=(g.nxh + 1, g.nyh, g.nz))
    fy = r.normal(size=(g.nxh, g.nyh + 1, g.nz))
    fz = r.normal(size=(g.nxh, g.nyh, g.nz + 1))
    u = r.normal(size=(g.nxh + 1, g.nyh, g.nz))
    return g, phi, fx, fy, fz, u


def _kernels():
    from repro.core.pressure import linearization_coefficient

    g, phi, fx, fy, fz, u = _inputs()
    rng = np.random.default_rng(1)
    rt = np.abs(rng.normal(size=g.shape_c)) * 30.0 + 250.0
    thf = np.abs(rng.normal(size=(g.nxh, g.nyh, g.nz + 1))) + 280.0
    op = HelmholtzOperator(
        g, thf, linearization_coefficient(eos_pressure.reference(rt, g), rt),
        dtau=0.05, beta=0.6)
    rhs = rng.normal(size=(g.nxh, g.nyh, g.nz - 1))
    return [
        ("advect_scalar", advect_scalar, (phi, fx, fy, fz, g)),
        ("advect_u", advect_u, (u, fx, fy, fz, g)),
        ("hyperdiffusion_c", hyperdiffusion_c, (phi, g)),
        ("vertical_diffusion_c", vertical_diffusion_c, (phi, g, 10.0)),
        ("eos_pressure", eos_pressure, (rt, g)),
        ("helmholtz_solve", lambda: op.solve(rhs), ()),
    ]


def _time_kernel(fn, args, backend):
    ex = StencilExecutor(backend)
    with use_executor(ex):
        out = fn(*args)                      # warm-up (and pool priming)
        best = float("inf")
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            out = fn(*args)
            best = min(best, time.perf_counter() - t0)
    return best, out, ex


def test_fused_kernels_speed_up_bit_identically(emit):
    rows, payload = [], {}
    total_ref = total_fused = 0.0
    for name, fn, args in _kernels():
        t_ref, out_ref, _ = _time_kernel(fn, args, "reference")
        t_fused, out_fused, ex = _time_kernel(fn, args, "fused")
        assert np.array_equal(out_ref, out_fused), f"{name} not bit-identical"
        assert ex.accelerated > 0, f"{name} never took the fused path"
        total_ref += t_ref
        total_fused += t_fused
        rows.append([name, t_ref * 1e3, t_fused * 1e3, t_ref / t_fused])
        payload[name] = {"wall_reference_ms": t_ref * 1e3,
                         "wall_fused_ms": t_fused * 1e3,
                         "wall_speedup": t_ref / t_fused}
    speedup = total_ref / total_fused
    rows.append(["TOTAL", total_ref * 1e3, total_fused * 1e3, speedup])

    # deterministic end-to-end stats for the CI regression gate: a fixed
    # shear-layer run's dispatch counts and pool accounting never move
    # unless the kernels or the executor change
    exp = Experiment(RunSpec(workload="shear-layer", steps=3,
                             nx=16, ny=16, nz=12,
                             stencil_backend="fused")).prepare()
    exp.run()
    stats = exp.executor.stats()

    emit(format_table(
        ["kernel", "reference [ms]", "fused [ms]", "speedup"], rows,
        title=f"Stencil fusion — {NX}x{NY}x{NZ} tile, best of {ROUNDS}; "
              f"fixed-run stats: {exp.executor.report()}"))
    write_bench_json("stencil_fusion", {
        "tile": f"{NX}x{NY}x{NZ}",
        "kernels": payload,
        "wall_speedup_total": speedup,
        "fixed_run": {
            "workload": "shear-layer 16x16x12 x3 steps",
            "dispatches": stats["dispatches"],
            "accelerated": stats["accelerated"],
            "fallbacks": stats["fallbacks"],
            "pool_allocations": stats["allocations"],
            "pool_reuses": stats["reuses"],
            "pool_reuse_fraction": round(stats["reuse_fraction"], 6),
            "pool_bytes_allocated": stats["bytes_allocated"],
        },
    })

    assert speedup >= MIN_SPEEDUP, (
        f"fused aggregate speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x gate")
    assert stats["accelerated"] > stats["fallbacks"]
    assert stats["reuse_fraction"] > 0.9
