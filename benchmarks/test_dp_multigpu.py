"""Extension promised in DESIGN.md Sec. 7: double-precision multi-GPU
weak scaling (the paper only shows the single-precision multi-GPU curve;
its DP data stops at one GPU).

The model predicts what the paper's hardware would have delivered: DP
halves the per-step bandwidth *and* doubles every halo message, so both
compute and communication stretch; the DP/SP cluster ratio ends up close
to the single-GPU DP/SP ratio (~1/3), and the DP run would still clear
the Earth Simulator's AFES class at a fraction of the node count.
"""
import pytest

from repro.gpu.spec import Precision
from repro.perf.costmodel import asuca_step_cost
from repro.perf.report import format_table
from repro.perf.scaling import weak_scaling_sweep

CONFIGS = [(2, 3), (6, 9), (12, 16), (22, 24)]


def _sweep():
    sp = weak_scaling_sweep(configs=CONFIGS, precision=Precision.SINGLE)
    dp = weak_scaling_sweep(configs=CONFIGS, precision=Precision.DOUBLE)
    return sp, dp


def test_double_precision_weak_scaling(benchmark, emit):
    sp, dp = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["GPUs", "SP TFlops", "DP TFlops", "DP/SP"],
        [
            [a.n_gpus, a.tflops_overlap, b.tflops_overlap,
             b.tflops_overlap / a.tflops_overlap]
            for a, b in zip(sp, dp)
        ],
        title="DP multi-GPU weak scaling (model prediction beyond the paper)",
    )
    emit(table)

    # the DP/SP ratio at cluster scale tracks the single-GPU ratio
    single_ratio = (
        asuca_step_cost(320, 256, 48, precision=Precision.DOUBLE).gflops
        / asuca_step_cost(320, 256, 48).gflops
    )
    for a, b in zip(sp, dp):
        ratio = b.tflops_overlap / a.tflops_overlap
        assert ratio == pytest.approx(single_ratio, rel=0.25)
    # DP at 528 GPUs would still have been a multi-TFlops production run
    assert dp[-1].tflops_overlap > 3.0
    # both precisions scale monotonically
    for series in (sp, dp):
        tf = [p.tflops_overlap for p in series]
        assert all(y > x for x, y in zip(tf, tf[1:]))
