"""Fig. 11 — Computation and communication time in one time step with the
non-overlapping and overlapping methods on 528 GPUs.

Paper anchors (overlap): total 988 ms with computation 763 ms, MPI 336 ms
and GPU-CPU transfer 145 ms; ~53% of the communication hidden; the total
~11% shorter than non-overlapping even though divided kernels and
asynchronous transfers individually cost more.
"""
import pytest

from repro.dist.overlap import OverlapModel
from repro.perf.report import ComparisonReport, format_table


def _both():
    model = OverlapModel()
    return model.step_timeline(True), model.step_timeline(False)


def test_fig11_step_breakdown(benchmark, emit):
    tl_ov, tl_no = benchmark.pedantic(_both, rounds=1, iterations=1)

    table = format_table(
        ["method", "total [ms]", "compute", "MPI", "GPU-CPU", "hidden %"],
        [
            ["overlapping", tl_ov.total * 1e3, tl_ov.compute * 1e3,
             tl_ov.mpi * 1e3, tl_ov.gpu_cpu * 1e3,
             100 * tl_ov.hidden_fraction],
            ["non-overlapping", tl_no.total * 1e3, tl_no.compute * 1e3,
             tl_no.mpi * 1e3, tl_no.gpu_cpu * 1e3, 0.0],
        ],
        title="Fig. 11 — one-step time breakdown, 6956x6052x48 on 528 GPUs",
    )

    rep = ComparisonReport("Fig. 11 anchors (overlap)")
    rep.add("total [ms]", 988.0, tl_ov.total * 1e3, rel_tol=0.05)
    rep.add("computation [ms]", 763.0, tl_ov.compute * 1e3, rel_tol=0.05)
    rep.add("MPI [ms]", 336.0, tl_ov.mpi * 1e3, rel_tol=0.10)
    rep.add("GPU-CPU [ms]", 145.0, tl_ov.gpu_cpu * 1e3, rel_tol=0.15)
    rep.add("hidden communication [%]", 53.0,
            100 * tl_ov.hidden_fraction, rel_tol=0.15)
    gain = 100 * (1 - tl_ov.total / tl_no.total)
    rep.add("total-time improvement [%]", 11.0, gain, rel_tol=0.35)
    emit(table + "\n\n" + rep.render())

    assert rep.all_within_tolerance()
    # the paper's qualitative observations
    assert tl_ov.compute > tl_no.compute   # divided kernels cost more...
    assert tl_ov.total < tl_no.total       # ...but the total still wins
