"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, prints a
paper-vs-reproduced comparison, asserts the reproduction tolerances, and
writes its report under ``benchmarks/reports/`` (the source material of
EXPERIMENTS.md).
"""
from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def emit(report_dir, request):
    """emit(text, name=None): print a report and persist it."""

    def _emit(text: str, name: str | None = None) -> None:
        fname = (name or request.node.name).replace("/", "_") + ".txt"
        (report_dir / fname).write_text(text + "\n")
        print()
        print(text)

    return _emit
