"""Sec. VII's physics prediction, implemented — the paper's future work.

"Once many physics processes are incorporated, the actual performance of
ASUCA will also be increased because typical physics processes are compute
bound and can easily extract GPU's performance" (Sec. V-B) and
"future developments of ASUCA will introduce more computationally
intensive physics processes ... which will result in increased Flops"
(Sec. VII).  This benchmark runs the implemented cold-rain (ice)
extension both functionally (a deep cold convection case producing snow)
and through the cost model (sustained GFlops rise when the compute-bound
kernel joins the mix).
"""
import numpy as np
import pytest

from repro.core.grid import make_grid
from repro.core.model import AsucaModel, ModelConfig
from repro.core.pressure import eos_pressure, exner
from repro.core.reference import make_reference_state
from repro.core.rk3 import DynamicsConfig
from repro.gpu.spec import Precision, TESLA_S1070
from repro.perf.costmodel import ASUCA_KERNELS, asuca_step_cost
from repro.perf.report import ComparisonReport, format_table
from repro.physics.saturation import saturation_mixing_ratio
from repro.gpu.roofline import ridge_intensity
from repro.workloads.sounding import tropospheric_sounding


def test_more_physics_more_flops(benchmark, emit):
    """The cost-model side of the prediction."""

    def sweep():
        return (asuca_step_cost(320, 256, 48),
                asuca_step_cost(320, 256, 48, include_ice=True))

    warm, cold = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["configuration", "GFlops", "flops/step", "step time [ms]"],
        [
            ["warm rain only (paper 2010)", warm.gflops, warm.total_flops,
             warm.total_time * 1e3],
            ["+ cold rain (future work)", cold.gflops, cold.total_flops,
             cold.total_time * 1e3],
        ],
        title="Sec. VII physics prediction — sustained GFlops with more physics",
    )
    emit(table)

    assert cold.gflops > warm.gflops                 # the prediction
    assert cold.total_flops > warm.total_flops
    # ...because the added kernel is compute bound
    k = ASUCA_KERNELS["cold_rain"]
    assert k.cost.intensity(Precision.SINGLE) > ridge_intensity(TESLA_S1070)
    # and barely lengthens the step (physics is cheap in time, rich in flops)
    assert cold.total_time < 1.05 * warm.total_time


def test_cold_convection_produces_snow(benchmark, emit):
    """The functional side: a vigorous moist updraft reaching -20 C and
    colder air produces frozen condensate and (eventually) snowfall."""

    def run():
        g = make_grid(12, 12, 18, 1000.0, 1000.0, 15000.0)
        ref = make_reference_state(g, tropospheric_sounding())
        cfg = ModelConfig(
            dynamics=DynamicsConfig(dt=4.0, ns=4, rayleigh_depth=3000.0),
            physics_enabled=True, ice_enabled=True,
        )
        m = AsucaModel(g, ref, cfg)
        st = m.initial_state()
        z3 = g.z3d_c()
        X = g.x_c()[:, None, None]
        Y = g.y_c()[None, :, None]
        bubble = np.maximum(0.0, 1.0 - np.sqrt(
            ((X - 6000.0) / 3000.0) ** 2 + ((Y - 6000.0) / 3000.0) ** 2
            + ((z3 - 2000.0) / 1500.0) ** 2))
        st.rhotheta += st.rho * 6.0 * bubble
        p = eos_pressure(st.rhotheta, g)
        T = (st.rhotheta / st.rho) * exner(p)
        st.q["qv"][...] = np.minimum(1.0, 0.7 + 0.4 * bubble) \
            * saturation_mixing_ratio(p, T) * st.rho
        m._exchange(st, None)
        for _ in range(90):
            st = m.step(st)
        return g, m, st

    g, m, st = benchmark.pedantic(run, rounds=1, iterations=1)
    qi_max = float((st.q["qi"] / st.rho).max()) * 1e3
    qs_max = float((st.q["qs"] / st.rho).max()) * 1e3
    qr_max = float((st.q["qr"] / st.rho).max()) * 1e3
    d = m.diagnostics(st)
    emit(
        "cold convection after 6 min:\n"
        f"  max w      : {d.max_w:.2f} m/s\n"
        f"  max qi     : {qi_max:.3f} g/kg\n"
        f"  max qs     : {qs_max:.3f} g/kg\n"
        f"  max qr     : {qr_max:.3f} g/kg\n"
        f"  max precip : {float(st.precip_accum.max()) if st.precip_accum is not None else 0.0:.3f} mm"
    )
    assert d.max_w > 1.0
    assert qi_max + qs_max > 0.0          # frozen condensate formed aloft
    assert np.isfinite(d.max_wind)
