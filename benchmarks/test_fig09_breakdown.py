"""Fig. 9 — Breakdown of computation and communication time for the
short-time-step kernels on 528 GPUs (6956x6052x48, single precision):
single ("whole") vs divided (inner / y-boundary / x-boundary) kernels and
the GPU-to-host / MPI / host-to-GPU communication components.

Paper shape: dividing increases total compute per variable; boundary
kernels are a sizable minority of the inner time; density's communication
exceeds its own compute (hence method 3); the effective per-link MPI
bandwidth is the measured 438 MB/s.
"""
import pytest

from repro.dist.network import IB_SDR_MPI
from repro.dist.overlap import OverlapModel
from repro.perf.report import ComparisonReport, format_table


def test_fig09_kernel_breakdown(benchmark, emit):
    model = OverlapModel()  # 528-GPU interior rank, Table-I block
    rows = benchmark.pedantic(model.breakdown_rows, rounds=1, iterations=1)

    table = format_table(
        ["variable", "whole [us]", "inner", "bnd-y", "bnd-x",
         "GPU->host", "MPI", "host->GPU"],
        [
            [vb.name, vb.whole * 1e6, vb.inner * 1e6, vb.boundary_y * 1e6,
             vb.boundary_x * 1e6, vb.gpu_to_host * 1e6, vb.mpi * 1e6,
             vb.host_to_gpu * 1e6]
            for vb in rows
        ],
        title=("Fig. 9 — per-variable short-step breakdown "
               "(6956x6052x48 on 22x24 GPUs, SP)"),
    )

    rep = ComparisonReport("Fig. 9 anchors")
    rep.add("effective MPI bandwidth [MB/s]", 438.0,
            IB_SDR_MPI.bandwidth / 1e6, rel_tol=0.01)
    whole_range = (min(vb.whole for vb in rows) * 1e6,
                   max(vb.whole for vb in rows) * 1e6)
    # the paper's bars span roughly 3000-5000 us per whole kernel
    rep.add("largest whole-kernel time [us]", 4500.0, whole_range[1],
            rel_tol=0.25)
    emit(table + "\n\n" + rep.render())

    for vb in rows:
        assert vb.divided_compute > vb.whole       # reduced parallelism
        assert vb.inner < vb.whole
        assert 0.05 * vb.inner < vb.boundary_y < vb.inner
        assert 0.05 * vb.inner < vb.boundary_x < vb.inner
    density = next(vb for vb in rows if vb.name == "Density")
    assert density.communication > density.inner   # motivates method 3
    assert rep.all_within_tolerance()
