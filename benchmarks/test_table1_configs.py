"""Table I — Numbers of GPUs and mesh sizes for multi-GPU computing.

The table follows a block law: each GPU holds 320x256x48 and adjacent
blocks share a 4-cell overlap, so ``nx = 320 Px - 4 (Px-1)`` etc.  The
benchmark regenerates every row and checks it verbatim against the paper.
"""
import pytest

from repro.dist.decomposition import TABLE1_CONFIGS, decompose, table1_mesh
from repro.perf.report import format_table

PAPER_ROWS = [
    (6, (2, 3), (636, 760, 48)),
    (20, (4, 5), (1268, 1264, 48)),
    (54, (6, 9), (1900, 2272, 48)),
    (80, (8, 10), (2532, 2524, 48)),
    (120, (10, 12), (3164, 3028, 48)),
    (168, (12, 14), (3796, 3532, 48)),
    (192, (12, 16), (3796, 4036, 48)),
    (252, (14, 18), (4428, 4540, 48)),
    (320, (16, 20), (5060, 5044, 48)),
    (360, (18, 20), (5692, 5044, 48)),
    (396, (18, 22), (5692, 5548, 48)),
    (440, (20, 22), (6324, 5548, 48)),
    (480, (20, 24), (6324, 6052, 48)),
    (528, (22, 24), (6956, 6052, 48)),
]


def _regenerate():
    return [(px * py, (px, py), table1_mesh(px, py)) for px, py in TABLE1_CONFIGS]


def test_table1_mesh_sizes(benchmark, emit):
    ours = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    table = format_table(
        ["GPUs", "Px x Py", "mesh (regenerated)", "paper", "match"],
        [
            [n, f"{pq[0]}x{pq[1]}", f"{m[0]}x{m[1]}x{m[2]}",
             f"{pm[0]}x{pm[1]}x{pm[2]}", "yes" if m == pm else "NO"]
            for (n, pq, m), (_, _, pm) in zip(ours, PAPER_ROWS)
        ],
        title="Table I — GPU counts and mesh sizes (all 14 rows)",
    )
    emit(table)
    assert ours == PAPER_ROWS


def test_table1_decomposition_feasible(benchmark, emit):
    """Every Table-I mesh decomposes exactly back into 320x256 blocks of
    interior-plus-shared-overlap cells."""

    def check():
        out = []
        for px, py in TABLE1_CONFIGS:
            nx, ny, nz = table1_mesh(px, py)
            subs = decompose(nx, ny, px, py)
            nx_max = max(s.nx for s in subs)
            ny_max = max(s.ny for s in subs)
            out.append((px * py, nx_max, ny_max))
        return out

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    for n, nx_max, ny_max in rows:
        # the working set per GPU (interior + 2x4-cell halos) stays within
        # the paper's 320 x 256 block
        assert nx_max + 8 <= 320 + 8
        assert ny_max + 8 <= 256 + 8
    emit(format_table(["GPUs", "max local nx", "max local ny"],
                      [list(r) for r in rows],
                      title="Table I — local block extents after decomposition"))
