"""Transparency bench: which calibrated constants carry the headline
claims?  A +20% tornado sweep over the performance model's free
parameters, reporting the elasticity of the single-GPU GFlops and the
528-GPU TFlops.

The expected structure (asserted): the memory-bandwidth efficiency is the
dominant lever for both outputs (the paper's own thesis — the code is
"extremely memory-bottlenecked"); compute efficiency barely matters in
single precision; skew and message volume touch only the multi-GPU total.
"""
import pytest

from repro.perf.report import format_table
from repro.perf.sensitivity import sensitivity_sweep


def test_parameter_sensitivity(benchmark, emit):
    rows = benchmark.pedantic(sensitivity_sweep, rounds=1, iterations=1)
    table = format_table(
        ["parameter (+20%)", "GFlops (1 GPU)", "TFlops (528)",
         "elasticity GF", "elasticity TF"],
        [
            [r.parameter, r.gflops_single, r.tflops_528,
             r.gflops_sensitivity, r.tflops_sensitivity]
            for r in rows
        ],
        title="Performance-model sensitivity (elasticity = %output / %parameter)",
    )
    emit(table)

    by = {r.parameter: r for r in rows}
    # memory bandwidth dominates single-GPU performance (the paper's thesis)
    assert by["bandwidth_efficiency"].gflops_sensitivity > 0.6
    assert by["bandwidth_efficiency"].gflops_sensitivity > \
        3.0 * abs(by["compute_efficiency"].gflops_sensitivity)
    # cluster-only knobs leave the single-GPU number untouched
    for p in ("boundary_factor", "sync_skew", "extra_exchange_fields"):
        assert abs(by[p].gflops_sensitivity) < 1e-9
        # ...but drag the 528-GPU total down when increased
        assert by[p].tflops_sensitivity < 0.0
    # no single cluster knob swings the 15-TFlops claim by more than ~its
    # own share (elasticity magnitude < 1): the claim is not an artifact
    # of one tuned constant
    for r in rows:
        assert abs(r.tflops_sensitivity) < 1.0
