"""Forecast service under load — queueing discipline on a saturated
8-GPU fleet (the operational regime of Sec. VI: many forecast
configurations sharing TSUBAME's accelerators).

A seeded 50-job Poisson workload (mixed single-GPU and 2x2 gang jobs,
~30% duplicate submissions) is replayed twice through the same fleet:
once FIFO, once shortest-job-first.  Anchors:

* SJF's p95 wait does not exceed FIFO's on the mixed-size stream — the
  convoy effect is real and the scheduler removes it;
* duplicate submissions hit the content-addressed result cache;
* the replay is deterministic: both runs price the same total GPU-
  seconds of demand.

The numbers land in ``benchmarks/reports/BENCH_serve.json`` for the CI
serve job (and anything else that wants machine-readable output).
"""
import pytest

from bench_json import write_bench_json
from repro.obs.metrics import percentile_summary
from repro.perf.report import format_table
from repro.serve import ForecastService, GpuFleet, poisson_workload

N_JOBS = 50
N_GPUS = 8
SEED = 0


def _serve(policy: str):
    fleet = GpuFleet(N_GPUS)
    svc = ForecastService(fleet, policy=policy, execute=False)
    report = svc.run(poisson_workload(N_JOBS, seed=SEED))
    return fleet, report


def test_serve_fifo_vs_sjf(benchmark, emit):
    (fleet_fifo, fifo), (fleet_sjf, sjf) = benchmark.pedantic(
        lambda: (_serve("fifo"), _serve("sjf")), rounds=1, iterations=1)

    rows = [
        [name, r.n_done, r.n_cached, r.wait_s["p50"], r.wait_s["p95"],
         r.turnaround_s["p95"], r.makespan_s, 100 * r.utilization,
         100 * r.cache_hit_rate]
        for name, r in (("fifo", fifo), ("sjf", sjf))
    ]
    emit(format_table(
        ["policy", "run", "cached", "wait p50 [s]", "wait p95 [s]",
         "turnaround p95 [s]", "makespan [s]", "util %", "cache hit %"],
        rows,
        title=f"Forecast service — {N_JOBS} jobs, {N_GPUS} GPUs, "
              f"seed {SEED}"))

    write_bench_json("serve", {
        "n_jobs": N_JOBS, "n_gpus": N_GPUS, "seed": SEED,
        "fifo": fifo.as_dict(), "sjf": sjf.as_dict(),
    })

    # every job completes (run or cached) under both policies
    for r in (fifo, sjf):
        assert r.n_done + r.n_cached == N_JOBS
        assert r.n_shed == r.n_failed == r.n_evicted == 0
    # duplicates in the stream hit the content-addressed cache
    assert fifo.n_cached > 0 and sjf.n_cached > 0
    # SJF tames the convoy effect: tail wait no worse than FIFO's
    assert sjf.wait_s["p95"] <= fifo.wait_s["p95"] + 1e-12
    # the priced GPU-seconds are real work on both schedules (the
    # run/cached split may differ: whether a duplicate arrives before
    # or after its original finishes depends on the ordering policy)
    assert sum(fleet_fifo.busy_s) > 0 and sum(fleet_sjf.busy_s) > 0
    # the fleet is genuinely saturated (else the comparison is vacuous)
    assert fifo.peak_gpus == N_GPUS
    # report percentiles come from the shared obs.metrics helper; a
    # recompute over the per-job waits must agree exactly
    for r in (fifo, sjf):
        waits = [j["wait"] for j in r.jobs
                 if j["state"] in ("done", "cached") and j["wait"] is not None]
        assert percentile_summary(waits) == pytest.approx(r.wait_s)
