"""Sec. IV-A-1 ablation — array ordering (kij vs x-z-y).

The paper re-orders the Fortran code's z-fastest ("kij") arrays into
x-fastest ("x, z, y") storage so warp accesses coalesce.  The benchmark
quantifies the modeled cost of keeping the CPU ordering on the GPU, and
demonstrates the same phenomenon with a *real* strided-vs-contiguous
host-memory measurement.
"""
import pytest

from repro.gpu.coalescing import ArrayOrder, bandwidth_fraction, stride_microbenchmark
from repro.perf.costmodel import asuca_step_cost
from repro.perf.report import ComparisonReport, format_table


def test_ordering_model(benchmark, emit):
    def sweep():
        return {
            order: asuca_step_cost(320, 256, 48, order=order)
            for order in (ArrayOrder.XZY, ArrayOrder.KIJ, ArrayOrder.IJK)
        }

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["ordering", "coalesced fraction", "GFlops", "step time [ms]"],
        [
            [o.value, bandwidth_fraction(o), c.gflops, c.total_time * 1e3]
            for o, c in costs.items()
        ],
        title="Sec. IV-A-1 — array-ordering ablation (320x256x48, SP)",
    )
    emit(table)

    good = costs[ArrayOrder.XZY]
    bad = costs[ArrayOrder.KIJ]
    # keeping the CPU ordering forfeits most of the GPU's advantage: the
    # 83x speedup would collapse to single digits
    assert bad.gflops < 0.35 * good.gflops
    assert costs[ArrayOrder.IJK].gflops == pytest.approx(bad.gflops)


def test_ordering_real_strides(benchmark, emit):
    res = benchmark.pedantic(
        lambda: stride_microbenchmark(n=500_000, stride=64),
        rounds=1, iterations=1,
    )
    ratio = res["strided_seconds"] / res["contiguous_seconds"]
    emit(
        "real host-memory analogue of coalescing:\n"
        f"  contiguous walk: {res['contiguous_seconds']*1e3:8.3f} ms\n"
        f"  strided walk   : {res['strided_seconds']*1e3:8.3f} ms\n"
        f"  slowdown       : {ratio:8.1f}x"
    )
    assert ratio > 2.0  # direction must hold even on a noisy machine
