"""Design-choice ablation — the Koren limiter (paper Sec. II) against
alternatives, on a solid-body advection quality metric.

ASUCA chose Koren (1993) "for monotonicity to avoid numerical
oscillations" while retaining 3rd-order accuracy in smooth flow.  The
benchmark advects a Gaussian once around a periodic domain with each
limiter and reports RMS error, peak retention, and overshoot — Koren
should beat minmod on accuracy while, unlike the unlimited scheme,
producing no new extrema.
"""
import numpy as np
import pytest

from repro.core import advection as adv
from repro.core.boundary import fill_halo_x, fill_halo_y
from repro.core.grid import make_grid
from repro.core.limiter import LIMITERS
from repro.perf.report import format_table

NAMES = ["koren", "minmod", "van_leer", "superbee", "unlimited_k13", "upwind1"]


def _one_revolution(limiter_name: str):
    """Advect with the model's own time integrator class (SSP-RK3), so the
    comparison reflects the limiters, not Euler phase errors."""
    g = make_grid(nx=64, ny=4, nz=4, dx=1.0, dy=1.0, ztop=4.0)
    x = g.x_c()
    phi = 1.0 + np.exp(-0.5 * ((x[:, None, None] - 32.0) / 5.0) ** 2) * np.ones(g.shape_c)

    def fill(arr):
        fill_halo_x(arr, g, False)
        fill_halo_y(arr, g, False)

    fill(phi)
    fx = np.ones(g.shape_u)
    fy = np.zeros(g.shape_v)
    fz = np.zeros(g.shape_w)
    lim = LIMITERS[limiter_name]
    initial = phi.copy()
    dt = 0.5

    def rhs(p):
        return adv.advect_scalar(p, fx, fy, fz, g, lim)

    for _ in range(int(64 / dt)):
        p1 = phi + dt * rhs(phi)
        fill(p1)
        p2 = 0.75 * phi + 0.25 * (p1 + dt * rhs(p1))
        fill(p2)
        phi = phi / 3.0 + (2.0 / 3.0) * (p2 + dt * rhs(p2))
        fill(phi)
    err = float(np.sqrt(np.mean((g.interior(phi) - g.interior(initial)) ** 2)))
    peak = float(phi.max() - 1.0) / float(initial.max() - 1.0)
    overshoot = max(float(phi.max() - initial.max()),
                    float(initial.min() - phi.min()), 0.0)
    return err, peak, overshoot


def test_limiter_ablation(benchmark, emit):
    results = benchmark.pedantic(
        lambda: {n: _one_revolution(n) for n in NAMES}, rounds=1, iterations=1
    )
    table = format_table(
        ["limiter", "RMS error", "peak retention", "overshoot"],
        [[n, *results[n]] for n in NAMES],
        title="Limiter ablation — one revolution of a Gaussian (CFL 0.25)",
    )
    emit(table)

    err = {n: results[n][0] for n in NAMES}
    overshoot = {n: results[n][2] for n in NAMES}
    # Koren: monotone AND more accurate than the robust-but-diffusive ones
    assert overshoot["koren"] < 1e-10
    assert err["koren"] < err["minmod"]
    assert err["koren"] < err["van_leer"]
    assert err["koren"] < err["upwind1"]
    # the unlimited scheme oscillates (the reason ASUCA limits at all)
    assert overshoot["unlimited_k13"] > 1e-4
    assert overshoot["minmod"] < 1e-10 and overshoot["superbee"] < 1e-10
    # 1st-order upwind is by far the most diffusive
    assert results["upwind1"][1] < results["koren"][1]
