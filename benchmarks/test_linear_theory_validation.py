"""Quantitative dycore validation: nonlinear model vs analytic linear
mountain-wave theory.

The paper validates its port by agreement with the CPU code; this bench
validates the *numerics themselves* (which the closed ASUCA source cannot
be compared against) by the classic route: small-amplitude flow over a
bell ridge must converge to the steady linear solution.  At N a / U = 8
(hydrostatic regime, h/a ~ 0.03: linear), the integrated model reaches
pattern correlation > 0.75 and amplitude within ~15% of theory below the
sponge layer.
"""
import numpy as np
import pytest

from repro.perf.report import ComparisonReport
from repro.validation import linear_mountain_wave_w, pattern_correlation
from repro.workloads.mountain_wave import make_mountain_wave_case


def _run():
    case = make_mountain_wave_case(
        nx=64, ny=6, nz=24, dx=2000.0, ztop=18000.0,
        mountain_height=250.0, half_width=8000.0,
        u0=10.0, dt=5.0, ns=6, sponge_depth=6000.0,
    )
    case.run(960)  # 4800 s: several advective times, wave field developed
    g = case.grid
    _, _, w = case.state.velocities()
    h = g.halo
    j = h + g.ny // 2
    w_c = 0.5 * (w[h : h + g.nx, j, :-1] + w[h : h + g.nx, j, 1:])
    zs = g.zs[h : h + g.nx, j]
    w_lin = linear_mountain_wave_w(zs, g.dx, g.z_c, u0=10.0, n_bv=0.01)
    kmax = int(np.searchsorted(g.z_c, 10000.0))  # below the sponge
    corr = pattern_correlation(w_c[:, 1:kmax], w_lin[:, 1:kmax])
    amp = float(np.abs(w_c[:, 1:kmax]).max() / np.abs(w_lin[:, 1:kmax]).max())
    return corr, amp


def test_linear_mountain_wave_validation(benchmark, emit):
    corr, amp = benchmark.pedantic(_run, rounds=1, iterations=1)
    rep = ComparisonReport("Linear mountain-wave validation (N a / U = 8)")
    rep.add("pattern correlation vs theory", 1.0, corr, rel_tol=0.25)
    rep.add("amplitude ratio vs theory", 1.0, amp, rel_tol=0.20)
    emit(rep.render())
    assert corr > 0.75
    assert 0.7 < amp < 1.4
