"""Extensions beyond the paper's figures: strong scaling on a fixed mesh
and the 1-D vs 2-D decomposition trade-off.

The paper states its design choice without the counterfactual: "We
decompose the given grid in both the x and y directions (2D
decomposition)".  These benches quantify it — slab decompositions of the
same mesh carry several times the halo volume and step time — and show
the strong-scaling efficiency decay that makes weak scaling the paper's
headline metric.
"""
import pytest

from repro.perf.report import format_table
from repro.perf.scaling import (
    decomposition_ablation,
    near_square_factors,
    strong_scaling_sweep,
)


def test_strong_scaling(benchmark, emit):
    points = benchmark.pedantic(
        lambda: strong_scaling_sweep(gpu_counts=[1, 2, 6, 12, 24, 54]),
        rounds=1, iterations=1,
    )
    table = format_table(
        ["GPUs", "grid", "local mesh", "step [ms]", "speedup", "efficiency"],
        [
            [p.n_gpus, f"{p.px}x{p.py}",
             f"{p.local_mesh[0]}x{p.local_mesh[1]}x{p.local_mesh[2]}",
             p.step_time * 1e3, p.speedup, p.efficiency]
            for p in points
        ],
        title="Strong scaling — fixed 1900x2272x48 mesh (the Fig. 12 domain)",
    )
    emit(table)

    assert points[0].efficiency == pytest.approx(1.0)
    effs = [p.efficiency for p in points]
    # efficiency decays monotonically as ranks shrink
    assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
    # but the 54-GPU point (the paper's real-data configuration) still
    # delivers a large speedup
    assert points[-1].speedup > 0.5 * points[-1].n_gpus


def test_decomposition_1d_vs_2d(benchmark, emit):
    variants = benchmark.pedantic(
        lambda: decomposition_ablation(64), rounds=1, iterations=1
    )
    table = format_table(
        ["variant", "local mesh", "halo KB/field/exchange", "step [ms]"],
        [
            [v.label,
             f"{v.local_mesh[0]}x{v.local_mesh[1]}x{v.local_mesh[2]}",
             v.halo_bytes_per_exchange / 1e3, v.step_time * 1e3]
            for v in variants
        ],
        title="Decomposition ablation — 64 GPUs on the same global mesh",
    )
    emit(table)

    by_label = {v.label.split(" ")[0]: v for v in variants}
    two_d = by_label["2-D"]
    for slab in ("x-slabs", "y-slabs"):
        assert by_label[slab].halo_bytes_per_exchange > 2.0 * two_d.halo_bytes_per_exchange
        assert by_label[slab].step_time > 1.3 * two_d.step_time


def test_near_square_factors(benchmark):
    def check():
        assert near_square_factors(528) == (22, 24)
        assert near_square_factors(54) == (6, 9)
        assert near_square_factors(7) == (1, 7)
        assert near_square_factors(64) == (8, 8)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
