"""Ensemble forecasting — perturbed-member gang through the service.

An 8-member vortex ensemble (the operational shape of the
perturbed-cyclone studies in PAPERS.md) runs as a same-instant gang on a
4-GPU fleet, folding each member into the online product as it lands.
Anchors:

* full coverage: every member reduces, and the product is bitwise equal
  to the offline batch reduction over the standalone member runs;
* real spread: the seeded perturbations produce nonzero max-wind and
  track spread (an ensemble with zero spread is a broken ensemble);
* memory bound holds: the service retains no folded member states.

The deterministic product numbers land in
``benchmarks/reports/BENCH_ensemble.json`` for the CI ensemble job's
regression gate (wall-clock keys are gated out with
``--tolerance '*wall*=ignore'``).
"""
import time

import numpy as np

from bench_json import write_bench_json
from repro.api import Experiment, RunSpec
from repro.ensemble import EnsembleRunner, EnsembleSpec, OnlineReducer, \
    member_contribution
from repro.perf.report import format_table

MEMBERS = 8
GPUS = 4
SEED = 2026
BASE = dict(workload="vortex", steps=2, nx=16, ny=16, nz=8)


def _ensemble():
    return EnsembleSpec(base=RunSpec(**BASE), members=MEMBERS, seed=SEED)


def test_ensemble_product(benchmark, emit):
    t0 = time.perf_counter()
    runner = EnsembleRunner(_ensemble(), fleet=GPUS)
    result = benchmark.pedantic(runner.run, rounds=1, iterations=1)
    wall_s = time.perf_counter() - t0
    product = result.product

    rows = [[name, st["mean"], st["p10"], st["p50"], st["p90"],
             st["p90"] - st["p10"]]
            for name, st in product.scalar_stats.items()]
    emit(format_table(
        ["scalar", "mean", "p10", "p50", "p90", "spread (p90-p10)"],
        rows,
        title=f"Vortex ensemble — {MEMBERS} members, {GPUS} GPUs, "
              f"seed {SEED} (coverage {product.coverage:.3f})"))

    write_bench_json("ensemble", {
        "members": MEMBERS, "gpus": GPUS, "seed": SEED, "base": BASE,
        "product": product.as_dict(),
        "service": {k: v for k, v in result.report.as_dict().items()
                    if k != "jobs"},
        "wall_s": wall_s,
    })

    # full coverage, real spread
    assert product.coverage == 1.0
    wind = product.scalar_stats["max_wind"]
    assert wind["p90"] - wind["p10"] > 0.0
    assert product.field_stats["rhotheta"]["spread"].max() > 0.0
    assert "track.max_wind" in product.field_stats

    # the online product IS the offline batch reduction, bitwise
    contributions = [
        member_contribution(Experiment(spec).prepare().run(), m)
        for m, spec in enumerate(_ensemble().expand())
    ]
    offline = OnlineReducer.batch(contributions, MEMBERS)
    for name, st in product.field_stats.items():
        assert np.array_equal(st["mean"], offline.field_stats[name]["mean"])
        assert np.array_equal(st["spread"],
                              offline.field_stats[name]["spread"])
    assert product.scalar_stats == offline.scalar_stats

    # fold-then-release: no member state left behind in the service
    assert runner.service._computed == {}
    assert all(j.result is None for j in runner.service.jobs)
