"""Fig. 12 — Simulation with (synthetic) real data: horizontal wind,
pressure and precipitation after progressive forecast times, with the full
dynamical core and warm rain, domain-decomposed over a 6-rank process grid
(the laptop-scale stand-in for the paper's 1900x2272x48 on 54 GPUs).

The paper's claim is qualitative — "the GPU ASUCA is able to simulate the
basic set of real weather phenomena" — so the assertions are structural:
the vortex persists and moves with the steering flow, a surface pressure
low accompanies it, precipitation falls, boundaries stay stable, and the
decomposed run matches the single-domain run bit for bit.
"""
import numpy as np
import pytest

from repro.api import Experiment, RunSpec
from repro.perf.report import format_table

#: scaled checkpoint times [model minutes] standing in for the 2/4/6 h
CHECKPOINT_MIN = [4.0, 8.0, 12.0]


def _run_case():
    # saturated warm core (typhoon-like) so the warm-rain chain engages
    # within the scaled forecast horizon
    exp = Experiment(RunSpec(
        workload="real-case", steps=0, backend="multigpu", ranks=(2, 3),
        nx=36, ny=30, nz=12, dt=6.0,
        workload_kwargs=dict(dx=2500.0, vortex_rh=1.1,
                             vortex_amp=10.0))).prepare()
    case = exp.case

    snaps = []
    dt = case.model.config.dynamics.dt
    case.refresh_boundary_targets(0.0)
    done = 0
    for minutes in CHECKPOINT_MIN:
        steps = int(round(minutes * 60 / dt)) - done
        exp.advance(steps)
        done += steps
        exp.gather()
        snaps.append(case.snapshot(minutes / 60.0))
    return case, exp, snaps


def test_fig12_real_case_forecast(benchmark, emit):
    case, exp, snaps = benchmark.pedantic(
        _run_case, rounds=1, iterations=1
    )

    table = format_table(
        ["t [min]", "max wind [m/s]", "min p' [Pa]", "total precip [mm]"],
        [
            [s.hours * 60, s.max_wind, s.min_pressure_pert, s.total_precip_mm]
            for s in snaps
        ],
        title=("Fig. 12 (scaled) — synthetic real-data forecast, "
               "full dycore + warm rain on 2x3 ranks"),
    )
    emit(table)

    # a coherent cyclone: strong winds with a co-located pressure low
    for s in snaps:
        assert 5.0 < s.max_wind < 60.0
        assert s.min_pressure_pert < -30.0
    # precipitation develops as the moist vortex interacts with terrain
    assert snaps[-1].total_precip_mm > 0.0
    assert snaps[-1].total_precip_mm >= snaps[0].total_precip_mm
    # the vortex centre (pressure minimum) drifts downstream (+x steering)
    first, last = snaps[0], snaps[-1]
    x_first = np.unravel_index(np.argmin(first.p_surface_pert),
                               first.p_surface_pert.shape)[0]
    x_last = np.unravel_index(np.argmin(last.p_surface_pert),
                              last.p_surface_pert.shape)[0]
    # convection makes the instantaneous minimum jitter by a cell or two
    assert x_last >= x_first - 2
    # all fields finite: the relaxation boundaries stay stable
    for s in snaps:
        assert np.all(np.isfinite(s.u)) and np.all(np.isfinite(s.p_surface_pert))


def test_fig12_decomposed_equals_single(benchmark, emit):
    """The paper's round-off-equality claim, on the real-data path — both
    runs constructed through the same RunSpec, differing only in backend."""

    def run_both():
        kw = dict(workload="real-case", steps=10, nx=24, ny=21, nz=8,
                  dt=6.0)
        single = Experiment(RunSpec(backend="cpu", **kw)).run().state
        gathered = Experiment(RunSpec(ranks=(2, 3), **kw)).run().state
        g = gathered.grid
        h = g.halo
        return max(
            float(np.abs(
                gathered.get(n)[h : h + g.nx, h : h + g.ny]
                - single.get(n)[h : h + g.nx, h : h + g.ny]
            ).max())
            for n in single.prognostic_names()
        )

    diff = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(f"max |decomposed - single| over all prognostics after 10 steps: {diff}")
    assert diff == 0.0
