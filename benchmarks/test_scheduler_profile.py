"""Scheduler self-profiling under load — how fast the event loop and
the gang scheduler actually are, measured from the inside.

A seeded 400-job Poisson workload is replayed through a 16-GPU fleet
and the SchedulerProfile accumulated during the run is written to
``benchmarks/reports/BENCH_scheduler.json``.  The deterministic half
(event counts, pass counts, queue-scan distribution, modeled rates) is
gated by ``repro doctor --regress`` in CI; everything machine-dependent
lives under the ``wall`` key, which the gate ignores by default.
"""
from bench_json import write_bench_json
from repro.perf.report import format_table
from repro.serve import ForecastService, GpuFleet, poisson_workload

N_JOBS = 400
N_GPUS = 16
SEED = 0


def test_scheduler_profile(benchmark, emit):
    def run():
        svc = ForecastService(GpuFleet(N_GPUS), policy="sjf",
                              execute=False)
        report = svc.run(poisson_workload(N_JOBS, seed=SEED))
        return svc, report

    svc, report = benchmark.pedantic(run, rounds=1, iterations=1)
    profile = svc.profile
    d = profile.as_dict()

    emit(svc.profile.text())
    emit(format_table(
        ["jobs", "gpus", "events", "passes", "ev/modeled s", "ev/wall s"],
        [[N_JOBS, N_GPUS, d["events"]["total"], d["passes"]["count"],
          d["modeled"]["events_per_modeled_s"],
          d["wall"]["events_per_wall_s"]]],
        title=f"Scheduler profile — {N_JOBS} jobs, {N_GPUS} GPUs, "
              f"seed {SEED}"))

    write_bench_json("scheduler", {
        "n_jobs": N_JOBS, "n_gpus": N_GPUS, "seed": SEED,
        **d,
    })

    # the profile accounts for every event the loop processed
    assert d["events"]["by_kind"]["arrive"] == N_JOBS
    assert d["events"]["total"] == sum(d["events"]["by_kind"].values())
    # one queue-scan sample per schedule pass
    assert d["passes"]["queue_scan"]["count"] == d["passes"]["count"] > 0
    # started jobs + cache hits cover the whole stream
    assert d["passes"]["started"] == report.n_done
    assert report.n_done + report.n_cached == N_JOBS
    # modeled rates are derived from the replay, not the machine
    # (as_dict rounds to 9 decimals for stable JSON)
    assert d["modeled"]["makespan_s"] == round(report.makespan_s, 9)
    assert d["modeled"]["events_per_modeled_s"] > 0
