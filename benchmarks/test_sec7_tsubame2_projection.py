"""Sec. VII — Performance estimates of the GPU ASUCA on TSUBAME 2.0.

Paper arithmetic: 15 TFlops x (988 ms / 763 ms) x (4000 / 528) ~= 150
TFlops, assuming Fermi ~= Tesla throughput, communication completely
hidden by the quadrupled bandwidth, and perfect weak scaling; "the actual
overall performance ... will likely be higher than 150 TFlops" with real
Fermi throughput.
"""
import pytest

from repro.dist.network import TSUBAME_2_0
from repro.dist.overlap import OverlapModel
from repro.perf.projection import model_projection, paper_formula_projection
from repro.perf.report import ComparisonReport, format_table


def _all_projections():
    return (
        paper_formula_projection(),
        model_projection(fermi_throughput=False),
        model_projection(fermi_throughput=True),
    )


def test_sec7_projection(benchmark, emit):
    formula, conservative, fermi = benchmark.pedantic(
        _all_projections, rounds=1, iterations=1
    )
    table = format_table(
        ["method", "GPUs", "TFlops"],
        [
            [formula.method, formula.n_gpus, formula.tflops],
            [conservative.method, conservative.n_gpus, conservative.tflops],
            [fermi.method, fermi.n_gpus, fermi.tflops],
        ],
        title="Sec. VII — TSUBAME 2.0 projection",
    )
    rep = ComparisonReport("Sec. VII anchors")
    rep.add("projected TFlops (paper formula)", 150.0, formula.tflops,
            rel_tol=0.07)
    emit(table + "\n\n" + rep.render())

    assert rep.all_within_tolerance()
    # real Fermi throughput beats the conservative assumption — the
    # paper's "likely ... higher than 150 TFlops"
    assert fermi.tflops > conservative.tflops


def test_sec7_communication_hidden(benchmark, emit):
    """With >= 4x bandwidth the communication hides under computation."""

    def hidden():
        tl = OverlapModel(TSUBAME_2_0).step_timeline(True)
        return tl.hidden_fraction_comm_only, tl

    frac, tl = benchmark.pedantic(hidden, rounds=1, iterations=1)
    emit(
        f"TSUBAME 2.0 step: total {tl.total*1e3:.0f} ms, compute "
        f"{tl.compute*1e3:.0f} ms, comm {tl.communication*1e3:.0f} ms, "
        f"hidden (comm-only accounting) {100*frac:.0f}%"
    )
    assert frac > 0.9
