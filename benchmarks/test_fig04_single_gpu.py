"""Fig. 4 — Performance of ASUCA on a single GPU (Tesla S1070) and a CPU
(Opteron core) for eight grid sizes, single and double precision.

Paper anchors: 44.3 GFlops SP at 320x256x48; 14.6 GFlops DP at
320x128x48; SP-vs-CPU speedup 83.4x; DP memory limit halves the maximum
grid; performance rises with grid size and saturates.
"""
import pytest

from repro.gpu.memory import max_grid_fits
from repro.gpu.spec import Precision, TESLA_S1070
from repro.perf.costmodel import asuca_step_cost, cpu_step_time
from repro.perf.report import ComparisonReport, format_table

NY_SWEEP = [32, 64, 96, 128, 160, 192, 224, 256]


def _sweep():
    rows = []
    for ny in NY_SWEEP:
        n = 320 * ny * 48
        sp = asuca_step_cost(320, ny, 48)
        dp = (
            asuca_step_cost(320, ny, 48, precision=Precision.DOUBLE)
            if ny <= 128 else None  # paper: DP does not fit beyond 320x128x48
        )
        t_cpu = cpu_step_time(320, ny, 48)
        rows.append(
            (n, ny, sp.gflops, dp.gflops if dp else float("nan"),
             sp.total_flops / t_cpu / 1e9)
        )
    return rows


def test_fig04_single_gpu_performance(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = format_table(
        ["grid pts", "ny", "GPU SP [GFlops]", "GPU DP [GFlops]", "CPU DP [GFlops]"],
        [list(r) for r in rows],
        title="Fig. 4 — single-GPU performance vs grid size (nx=320, nz=48)",
    )

    rep = ComparisonReport("Fig. 4 anchors")
    sp_max = rows[-1][2]
    rep.add("GPU SP GFlops @320x256x48", 44.3, sp_max, rel_tol=0.05)
    dp_128 = [r for r in rows if r[1] == 128][0][3]
    rep.add("GPU DP GFlops @320x128x48", 14.6, dp_128, rel_tol=0.07)
    t_cpu = cpu_step_time(320, 256, 48)
    sp_cost = asuca_step_cost(320, 256, 48)
    rep.add("speedup SP GPU vs DP CPU core", 83.4,
            t_cpu / sp_cost.total_time, rel_tol=0.07)
    rep.add("speedup DP GPU vs DP CPU core", 26.3,
            t_cpu / asuca_step_cost(320, 256, 48, precision=Precision.DOUBLE).total_time,
            rel_tol=0.10)
    emit(table + "\n\n" + rep.render())

    assert rep.all_within_tolerance()
    # rising, saturating curve
    sp = [r[2] for r in rows]
    assert all(b > a for a, b in zip(sp, sp[1:]))
    assert (sp[-1] - sp[-2]) < 0.3 * (sp[1] - sp[0])
    # CPU line is flat and tiny
    cpu = [r[4] for r in rows]
    assert max(cpu) < 0.02 * sp_max * 2


def test_fig04_memory_limits(benchmark, emit):
    """The 4 GB S1070 memory caps the sweep exactly as the paper states."""
    cap = TESLA_S1070.mem_capacity

    def limits():
        return (max_grid_fits(cap, 320, 48, 4) // 32 * 32,
                max_grid_fits(cap, 320, 48, 8) // 32 * 32)

    ny_sp, ny_dp = benchmark.pedantic(limits, rounds=1, iterations=1)
    rep = ComparisonReport("Fig. 4 memory limits (max ny, multiples of 32)")
    rep.add("max ny single precision", 256, ny_sp, rel_tol=0.0)
    rep.add("max ny double precision", 128, ny_dp, rel_tol=0.0)
    emit(rep.render())
    assert ny_sp == 256 and ny_dp == 128
