"""Sec. V-A ablation — the three overlap methods individually.

The paper motivates each optimization separately: method 1 pipelines the
13 water-substance exchanges behind one another's advection kernels
(Fig. 7); method 2 divides the short-step kernels into inner/boundary
parts (Fig. 8); method 3 fuses density with potential temperature because
density's own compute cannot hide its communication (Fig. 9 discussion).
This benchmark turns each off in isolation at the 528-GPU configuration.
"""
import pytest

from repro.dist.overlap import OverlapConfig, OverlapModel
from repro.perf.report import format_table

VARIANTS = [
    ("all three methods", OverlapConfig()),
    ("no method 1 (water pipeline)", OverlapConfig(method1_pipeline=False)),
    ("no method 2 (kernel division)", OverlapConfig(method2_divide=False)),
    ("no method 3 (rho+theta fusion)", OverlapConfig(method3_fuse=False)),
    ("no overlap at all", OverlapConfig(method1_pipeline=False,
                                        method2_divide=False,
                                        method3_fuse=False)),
]


def _sweep():
    out = []
    for label, cfg in VARIANTS:
        model = OverlapModel(config=cfg)
        overlap = cfg.method1_pipeline or cfg.method2_divide or cfg.method3_fuse
        tl = model.step_timeline(overlap)
        out.append((label, tl))
    return out


def test_overlap_method_ablation(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    base = rows[0][1].total
    table = format_table(
        ["variant", "total [ms]", "compute [ms]", "vs full [%]"],
        [
            [label, tl.total * 1e3, tl.compute * 1e3,
             100.0 * (tl.total / base - 1.0)]
            for label, tl in rows
        ],
        title="Sec. V-A — overlap-method ablation (528 GPUs, SP)",
    )
    emit(table)

    results = dict(rows)
    full = results["all three methods"].total
    # no variant beats the full set
    for label, tl in rows[1:]:
        assert tl.total >= full - 1e-12, label
    # method 2 carries most of the benefit (the paper's Fig. 8 machinery)
    assert results["no method 2 (kernel division)"].total > 1.05 * full
    # dropping everything reverts to (approximately) the serial time
    assert results["no overlap at all"].total > 1.08 * full
