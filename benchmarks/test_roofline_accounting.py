"""Live roofline — the Fig. 5 picture regenerated from *measured* counts.

Where ``test_fig05_roofline.py`` places the hand-entered cost-table
kernels on the Eq.-6 curve, this benchmark runs the real dycore with the
counting hook enabled (``RunSpec(counters=True)``), lets the instrumented
arrays count every FLOP and element the accounting kernels execute, and
asserts that the *measured* picture reproduces the paper's shape:

* among the five Fig. 5 kernels, the coordinate transformation achieves
  the lowest GFlops and the warm-rain kernel the highest;
* warm rain sits above the ridge (compute bound), the other four below
  (memory bound);
* no kernel exceeds its Eq.-6 ceiling;
* measurement agrees with the cost table within the drift bands —
  ``RooflineReport.exit_status() == 0`` (no ROOF01/ROOF02 findings).

The per-kernel measured numbers are written to
``BENCH_roofline.json`` and gated in CI by ``repro doctor --regress``
against the checked-in baseline: the virtual runtime and the accounting
kernels are deterministic, so any drift is a real change to either the
kernels or the counter.
"""
from bench_json import write_bench_json

from repro.api import Experiment, RunSpec
from repro.obs.doctor.roofline import roofline_from_records
from repro.perf.costmodel import ROOFLINE_KERNELS
from repro.perf.report import format_table

GRID = (16, 16, 12)
STEPS = 2


def _counted_report():
    exp = Experiment(RunSpec(
        workload="shear-layer", steps=STEPS,
        nx=GRID[0], ny=GRID[1], nz=GRID[2],
        backend="gpu", counters=True,
    )).prepare()
    exp.run()
    return roofline_from_records(exp.runner.device.timeline)


def test_roofline_measured_fig05_ranking(benchmark, emit):
    report = benchmark.pedantic(_counted_report, rounds=1, iterations=1)

    table = format_table(
        ["kernel", "AI [flop/B]", "AI streamed", "measured GFlops",
         "Eq.6 ceiling", "% of ceiling"],
        [[k.name, k.placement.intensity, k.streamed_intensity,
          k.placement.gflops, k.placement.ceiling_gflops,
          100.0 * k.placement.ceiling_fraction]
         for k in report.by_achieved()],
        title="Live roofline — measured FLOP/byte counts "
              f"(shear-layer {GRID[0]}x{GRID[1]}x{GRID[2]}, "
              f"{STEPS} steps, SP Tesla S1070)",
    )
    emit(table)

    # every launch of the counted run carries measurement, and no kernel
    # drifted outside the bands vs the cost table
    assert report.measured_ops == report.total_ops > 0
    assert report.exit_status() == 0, [f.text() for f in report.findings]

    # the paper's Fig. 5 ranking, from measurement: restrict to the five
    # paper kernels (the full dycore also launches cheaper bookkeeping
    # kernels such as array_copy that sit below all five)
    five = {name: report.kernel(name) for _, name in ROOFLINE_KERNELS}
    assert all(k is not None for k in five.values())
    achieved = {n: k.placement.gflops for n, k in five.items()}
    assert achieved["coord_transform"] == min(achieved.values())
    assert achieved["warm_rain"] == max(achieved.values())

    # boundedness: warm rain above the ridge, the rest below
    assert five["warm_rain"].placement.intensity > report.ridge
    for name in ("coord_transform", "pgf_x", "advection", "helmholtz"):
        assert five[name].placement.intensity < report.ridge, (
            f"{name} must be memory bound")

    # nothing beats its own Eq.-6 ceiling
    for k in report.kernels:
        assert k.placement.gflops <= k.placement.ceiling_gflops * 1.0001

    # ---- deterministic artifact for the CI regression gate
    payload = {
        "grid": list(GRID),
        "steps": STEPS,
        "workload": "shear-layer",
        "spec": report.spec_name,
        "precision": report.precision,
        "ridge": report.ridge,
        "measured_ops": report.measured_ops,
        "kernels": {
            k.name: {
                "measured_flops_per_point": k.measured_flops_per_point,
                "measured_bytes_per_point": k.measured_bytes_per_point,
                "intensity": k.placement.intensity,
                "streamed_intensity": k.streamed_intensity,
                "achieved_gflops": k.placement.gflops,
                "ceiling_fraction": k.placement.ceiling_fraction,
                "peak_fraction": k.placement.peak_fraction,
                "time_share": k.time_share,
            }
            for k in report.kernels
        },
    }
    write_bench_json("roofline", payload)
