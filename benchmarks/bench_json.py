"""Machine-readable benchmark artifacts.

The text reports under ``benchmarks/reports/`` are for humans (and
EXPERIMENTS.md); this helper writes the same numbers as JSON so other
tooling — dashboards, regression trackers, the serve benchmark's CI
gate — can consume them without parsing tables.  Each benchmark that
wants a JSON artifact calls::

    from bench_json import write_bench_json
    write_bench_json("serve", {"fifo": {...}, "sjf": {...}})

which writes ``benchmarks/reports/BENCH_serve.json`` (sorted keys,
trailing newline, deterministic for a deterministic payload).

Every artifact is stamped with a ``schema_version`` so the regression
gate (``repro doctor --regress``) can refuse to diff artifacts whose
layouts diverged; bump :data:`repro.obs.doctor.regress.BENCH_SCHEMA_VERSION`
when a payload's structure changes.
"""
from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))
from repro.obs.doctor.regress import BENCH_SCHEMA_VERSION  # noqa: E402

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

__all__ = ["write_bench_json", "BENCH_SCHEMA_VERSION"]


def write_bench_json(name: str, payload: dict,
                     report_dir: "pathlib.Path | str | None" = None
                     ) -> pathlib.Path:
    """Write ``payload`` as ``BENCH_<name>.json`` under ``report_dir``
    (default ``benchmarks/reports/``) and return the path."""
    directory = pathlib.Path(report_dir) if report_dir else REPORT_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    doc = dict(payload)
    doc.setdefault("schema_version", BENCH_SCHEMA_VERSION)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True,
                               default=str) + "\n")
    return path
