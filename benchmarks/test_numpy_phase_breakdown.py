"""The reproduction's own Fig.-9 analogue: wall-clock phase breakdown of
the NumPy implementation on this machine.

The paper profiles its CUDA kernels per variable; here the instrumented
integrator reports real seconds per phase.  Structural expectations
asserted: advection dominates the long step (it is the widest-stencil,
most-invoked kernel family in the paper too); the warm-rain share is
small, mirroring the paper's "1.0% GPU time" note.
"""
import pytest

from repro.profiling import PhaseTimer, use_timer
from repro.workloads.warm_bubble import make_warm_bubble_case


def _profile():
    case = make_warm_bubble_case(nx=24, ny=24, nz=16, dx=1000.0, dt=4.0)
    timer = PhaseTimer()
    with use_timer(timer):
        case.run(5)
    return timer


def test_phase_breakdown(benchmark, emit):
    timer = benchmark.pedantic(_profile, rounds=1, iterations=1)
    emit("NumPy implementation phase breakdown (5 long steps, 24x24x16):\n"
         + timer.report())

    adv = (timer.seconds["advect_momentum"] + timer.seconds["advect_theta"]
           + timer.seconds["advect_moisture"])
    total = timer.total()
    assert adv > 0.3 * total                     # advection dominates
    assert timer.fraction("physics_warm_rain") < 0.1
    assert timer.fraction("helmholtz_solve") < 0.4
    # every instrumented phase fired the expected number of times:
    # 3 RK stages x 5 steps = 15 slow-tendency evaluations
    assert timer.calls["advect_momentum"] == 15
    # substeps: (1 + ns/2 + ns) x 5 steps with ns=6 -> 10 x 5
    assert timer.calls["acoustic_substep"] == 50
    assert timer.calls["helmholtz_solve"] == 50
