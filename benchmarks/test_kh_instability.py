"""Validation: Kelvin-Helmholtz instability obeys the Miles-Howard
criterion.

A tanh shear layer grows billows when its center Richardson number is
below 1/4 and stays quiescent well above it — a sharp, theory-backed test
of the momentum advection + buoyancy coupling that is orthogonal to the
mountain-wave validation.
"""
import pytest

from repro.api import Experiment, RunSpec
from repro.perf.report import format_table


def _growth(richardson: float) -> tuple[float, float, float]:
    exp = Experiment(RunSpec(
        workload="shear-layer", steps=0,
        workload_kwargs={"richardson": richardson})).prepare()
    exp.advance(150)
    exp.gather()
    ke_early = exp.case.perturbation_ke()
    exp.advance(450)
    exp.gather()
    ke_late = exp.case.perturbation_ke()
    return ke_early, ke_late, ke_late / ke_early


def test_kh_richardson_criterion(benchmark, emit):
    def sweep():
        return {ri: _growth(ri) for ri in (0.10, 0.40)}

    res = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["Ri", "KE early", "KE late", "growth factor", "KH expected"],
        [
            [ri, *res[ri], "yes" if ri < 0.25 else "no"]
            for ri in sorted(res)
        ],
        title="Kelvin-Helmholtz validation (Miles-Howard: unstable iff Ri < 1/4)",
    )
    emit(table)

    growth_unstable = res[0.10][2]
    growth_stable = res[0.40][2]
    assert growth_unstable > 3.0          # billows grow
    assert growth_stable < 2.0            # stable layer stays quiet
    assert growth_unstable > 2.0 * growth_stable
