"""Fig. 5 — Relationship between arithmetic intensity and performance for
the five key ASUCA kernels on the Tesla S1070, against the Eq.-6 curve.

Paper shape: kernels (1)-(4) are memory-bandwidth bound and sit below the
ridge; the coordinate transformation (1) is slowest (2 reads + 1 write per
1 flop); the warm-rain kernel (5) is transcendental-heavy and approaches
the compute roof.  The analytic advection cost is cross-validated against
the instrumented-array FLOP counter running the *real* Koren kernel.
"""
import numpy as np
import pytest

from repro.core.advection import limited_face_flux
from repro.gpu.roofline import place_cost_table, ridge_intensity
from repro.gpu.spec import TESLA_S1070
from repro.perf.costmodel import ASUCA_KERNELS, ROOFLINE_KERNELS
from repro.perf.counting import FlopCounter
from repro.perf.report import ComparisonReport, format_table

N_POINTS = 320 * 256 * 48


def _roofline_rows():
    return [(p.name, p.intensity, p.gflops, p.ceiling_gflops)
            for p in place_cost_table(N_POINTS, spec=TESLA_S1070)]


def test_fig05_roofline(benchmark, emit):
    rows = benchmark.pedantic(_roofline_rows, rounds=1, iterations=1)
    table = format_table(
        ["kernel", "AI [flop/B]", "modeled GFlops", "Eq.6 ceiling"],
        [list(r) for r in rows],
        title="Fig. 5 — arithmetic intensity vs performance (SP, Tesla S1070)",
    )
    emit(table)

    perfs = {name: perf for (label, name), (_, _, perf, _) in
             zip(ROOFLINE_KERNELS, rows)}
    ais = {name: ai for (label, name), (_, ai, _, _) in
           zip(ROOFLINE_KERNELS, rows)}
    ridge = ridge_intensity(TESLA_S1070)

    # paper orderings and boundedness
    assert perfs["coord_transform"] == min(perfs.values())
    assert perfs["warm_rain"] == max(perfs.values())
    for name in ("coord_transform", "pgf_x", "advection", "helmholtz"):
        assert ais[name] < ridge, f"{name} must be memory bound"
    assert ais["warm_rain"] > ridge  # compute bound
    # every kernel sits below its Eq.-6 ceiling
    for _, ai, perf, ceiling in rows:
        assert perf <= ceiling * 1.0001
    # coordinate transform anchor: 1 flop / 12 bytes
    assert ais["coord_transform"] == pytest.approx(1.0 / 12.0)


def test_fig05_advection_cost_vs_measured(benchmark, emit):
    """PAPI substitute: the measured FLOPs of the real Koren face-flux
    kernel validate the analytic advection cost (3 directions x 4-pt
    stencils + divergence bookkeeping)."""

    def measure():
        counter = FlopCounter()
        n = 128
        rng = np.random.default_rng(0)
        phi = counter.wrap(rng.normal(size=n))
        flux = counter.wrap(rng.normal(size=n - 1))
        limited_face_flux(phi, flux, axis=0)
        return counter.flops / (n - 3)

    per_face = benchmark.pedantic(measure, rounds=1, iterations=1)
    analytic_per_point = ASUCA_KERNELS["advection"].cost.flops_per_point
    # three directions of face fluxes plus interpolation/divergence ~ 4-5x
    implied = 3.0 * per_face
    rep = ComparisonReport("Fig. 5 cross-check: advection flops/point")
    rep.add("analytic cost-table value", analytic_per_point, implied,
            rel_tol=0.6)
    emit(rep.render())
    assert 0.4 * analytic_per_point < implied < 1.6 * analytic_per_point
